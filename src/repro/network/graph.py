"""Directed capacitated graph model of a wavelength-switched network.

The network is a directed graph ``G = (V, E)`` (paper Section II-A).  Each
edge ``e`` carries an integer number of wavelengths ``C_e`` — its capacity
in the wavelength-assignment problems — and the network has a uniform
per-wavelength data rate (e.g. 20 Gbps split across ``W`` wavelengths in
the paper's experiments).

Research-network links are almost always deployed in *pairs* (one fiber
per direction), which is how the paper counts them ("200 pairs of links").
:meth:`Network.add_link_pair` adds both directions at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["Edge", "Network"]

Node = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed link with an integer wavelength capacity.

    Attributes
    ----------
    source, target:
        Endpoint node identifiers.
    capacity:
        ``C_e``: number of wavelengths on the link (a positive integer).
    weight:
        Routing weight used by shortest-path computations (default 1.0,
        i.e. hop count).  Does not affect the optimization problems.
    """

    source: Node
    target: Node
    capacity: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValidationError(f"self-loop edge at node {self.source!r}")
        if int(self.capacity) != self.capacity or self.capacity < 1:
            raise ValidationError(
                f"edge capacity must be a positive integer, got {self.capacity!r}"
            )
        if not (self.weight > 0 and np.isfinite(self.weight)):
            raise ValidationError(f"edge weight must be positive, got {self.weight}")
        object.__setattr__(self, "capacity", int(self.capacity))


class Network:
    """Directed wavelength-switched network.

    Parameters
    ----------
    wavelength_rate:
        Data rate of a single wavelength, in volume units per time unit
        (e.g. GB per hour).  All demands are normalized by this rate when
        problems are built (paper Section II-B.2), so one wavelength held
        for one time unit moves exactly ``wavelength_rate`` of volume.
    name:
        Optional human-readable label.

    Examples
    --------
    >>> net = Network(wavelength_rate=10.0)
    >>> net.add_link_pair("a", "b", capacity=4)
    (0, 1)
    >>> net.num_nodes, net.num_edges, net.num_link_pairs
    (2, 2, 1)
    """

    def __init__(self, wavelength_rate: float = 1.0, name: str = "") -> None:
        if not (wavelength_rate > 0 and np.isfinite(wavelength_rate)):
            raise ValidationError(
                f"wavelength_rate must be positive, got {wavelength_rate}"
            )
        self.wavelength_rate = float(wavelength_rate)
        self.name = name
        self._nodes: list[Node] = []
        self._node_index: dict[Node, int] = {}
        self._edges: list[Edge] = []
        self._edge_index: dict[tuple[Node, Node], int] = {}
        self._out_edges: dict[Node, list[int]] = {}
        self._in_edges: dict[Node, list[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Register ``node``; adding an existing node is a no-op."""
        if node not in self._node_index:
            self._node_index[node] = len(self._nodes)
            self._nodes.append(node)
            self._out_edges[node] = []
            self._in_edges[node] = []

    def add_edge(
        self, source: Node, target: Node, capacity: int, weight: float = 1.0
    ) -> int:
        """Add a directed edge and return its index.

        Endpoints are registered automatically.  Duplicate directed edges
        (same source and target) are rejected: a wavelength-switched link
        is modelled once with its full wavelength count.
        """
        if (source, target) in self._edge_index:
            raise ValidationError(
                f"duplicate edge {source!r} -> {target!r}; "
                "set the wavelength capacity on the existing edge instead"
            )
        edge = Edge(source, target, capacity, weight)
        self.add_node(source)
        self.add_node(target)
        idx = len(self._edges)
        self._edges.append(edge)
        self._edge_index[(source, target)] = idx
        self._out_edges[source].append(idx)
        self._in_edges[target].append(idx)
        return idx

    def add_link_pair(
        self, a: Node, b: Node, capacity: int, weight: float = 1.0
    ) -> tuple[int, int]:
        """Add the directed edges ``a -> b`` and ``b -> a``.

        This is the natural unit for optical links, which are deployed as
        one fiber per direction; the paper counts topologies in "pairs of
        links".  Returns the two edge indices.
        """
        return (
            self.add_edge(a, b, capacity, weight),
            self.add_edge(b, a, capacity, weight),
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Sequence[Node]:
        """Nodes in insertion order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> Sequence[Edge]:
        """Edges in insertion order (edge index == position)."""
        return tuple(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_link_pairs(self) -> int:
        """Number of node pairs connected in both directions."""
        count = 0
        for (u, v) in self._edge_index:
            if (v, u) in self._edge_index:
                count += 1
        return count // 2

    def node_index(self, node: Node) -> int:
        """Dense integer index of ``node``."""
        try:
            return self._node_index[node]
        except KeyError:
            raise ValidationError(f"unknown node {node!r}") from None

    def has_node(self, node: Node) -> bool:
        return node in self._node_index

    def has_edge(self, source: Node, target: Node) -> bool:
        return (source, target) in self._edge_index

    def edge_id(self, source: Node, target: Node) -> int:
        """Index of the directed edge ``source -> target``."""
        try:
            return self._edge_index[(source, target)]
        except KeyError:
            raise ValidationError(f"no edge {source!r} -> {target!r}") from None

    def edge(self, edge_id: int) -> Edge:
        """Edge object for ``edge_id``."""
        if not 0 <= edge_id < len(self._edges):
            raise ValidationError(f"edge id {edge_id} out of range")
        return self._edges[edge_id]

    def out_edges(self, node: Node) -> Sequence[int]:
        """Indices of edges leaving ``node``."""
        self.node_index(node)
        return tuple(self._out_edges[node])

    def in_edges(self, node: Node) -> Sequence[int]:
        """Indices of edges entering ``node``."""
        self.node_index(node)
        return tuple(self._in_edges[node])

    def degree(self, node: Node) -> int:
        """Total degree (in + out edge count) of ``node``."""
        self.node_index(node)
        return len(self._out_edges[node]) + len(self._in_edges[node])

    def capacities(self) -> np.ndarray:
        """Integer array of wavelength counts ``C_e``, indexed by edge id."""
        return np.array([e.capacity for e in self._edges], dtype=np.int64)

    def weights(self) -> np.ndarray:
        """Float array of routing weights, indexed by edge id."""
        return np.array([e.weight for e in self._edges], dtype=float)

    def link_rate(self, edge_id: int) -> float:
        """Total data rate of a link: ``C_e * wavelength_rate``."""
        return self.edge(edge_id).capacity * self.wavelength_rate

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Network({label and label + ', '}nodes={self.num_nodes}, "
            f"edges={self.num_edges}, rate={self.wavelength_rate:g})"
        )

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------
    def with_capacity(self, capacity: int) -> "Network":
        """Copy of the network with every edge set to ``capacity`` wavelengths."""
        return self._rebuild(lambda e: capacity, self.wavelength_rate)

    def with_wavelengths(
        self, num_wavelengths: int, total_link_rate: float
    ) -> "Network":
        """Copy with ``num_wavelengths`` per link at constant total link rate.

        This is the sweep used by the paper's Figures 1 and 2: the total
        capacity of every link is held at ``total_link_rate`` while the
        number of wavelengths it is divided into varies, so
        ``wavelength_rate = total_link_rate / num_wavelengths``.
        """
        if num_wavelengths < 1:
            raise ValidationError(
                f"num_wavelengths must be >= 1, got {num_wavelengths}"
            )
        if total_link_rate <= 0:
            raise ValidationError(
                f"total_link_rate must be positive, got {total_link_rate}"
            )
        return self._rebuild(
            lambda e: num_wavelengths, total_link_rate / num_wavelengths
        )

    def copy(self) -> "Network":
        """Deep copy (edges are immutable, so a structural copy)."""
        return self._rebuild(lambda e: e.capacity, self.wavelength_rate)

    def _rebuild(self, capacity_of, wavelength_rate: float) -> "Network":
        net = Network(wavelength_rate=wavelength_rate, name=self.name)
        for node in self._nodes:
            net.add_node(node)
        for e in self._edges:
            net.add_edge(e.source, e.target, capacity_of(e), e.weight)
        return net

    # ------------------------------------------------------------------
    # Structure checks
    # ------------------------------------------------------------------
    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        if self.num_nodes <= 1:
            return True
        return (
            self._reachable_count(self._out_edges, forward=True) == self.num_nodes
            and self._reachable_count(self._in_edges, forward=False)
            == self.num_nodes
        )

    def _reachable_count(self, adjacency, forward: bool) -> int:
        start = self._nodes[0]
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for eid in adjacency[u]:
                edge = self._edges[eid]
                v = edge.target if forward else edge.source
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen)

    @classmethod
    def from_link_pairs(
        cls,
        pairs: Iterable[tuple[Node, Node]],
        capacity: int,
        wavelength_rate: float = 1.0,
        name: str = "",
    ) -> "Network":
        """Build a network from undirected node pairs, each a link pair."""
        net = cls(wavelength_rate=wavelength_rate, name=name)
        for a, b in pairs:
            net.add_link_pair(a, b, capacity)
        return net
