"""Network substrate: graphs, topologies, random generators and paths."""

from .capacity import CapacityProfile
from .graph import Edge, Network
from .paths import (
    Path,
    build_path_sets,
    edge_disjoint_paths,
    k_shortest_paths,
    shortest_path,
)
from .topologies import (
    ABILENE_CORE_LINKS,
    ABILENE_EXPRESS_LINKS,
    abilene,
    dumbbell,
    full_mesh,
    grid2d,
    line,
    nsfnet,
    ring,
    star,
)
from .waxman import waxman_network

__all__ = [
    "Edge",
    "Network",
    "CapacityProfile",
    "Path",
    "shortest_path",
    "k_shortest_paths",
    "edge_disjoint_paths",
    "build_path_sets",
    "abilene",
    "nsfnet",
    "line",
    "ring",
    "star",
    "grid2d",
    "full_mesh",
    "dumbbell",
    "waxman_network",
    "ABILENE_CORE_LINKS",
    "ABILENE_EXPRESS_LINKS",
]
