"""Path computation: Dijkstra shortest paths and Yen's k-shortest paths.

The optimization formulations are *path based* (paper Section II-B.1):
each job is given an explicit collection of allowed paths
``P(s_i, d_i, j)`` and bandwidth is reserved only on those.  The paper
found 4–8 paths per job sufficient for near-optimal performance; this
module computes such sets with Yen's loopless k-shortest-path algorithm
on top of Dijkstra.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Hashable, Sequence

from ..errors import ValidationError
from .graph import Network

__all__ = [
    "Path",
    "shortest_path",
    "k_shortest_paths",
    "edge_disjoint_paths",
    "build_path_sets",
]

Node = Hashable


@dataclass(frozen=True)
class Path:
    """A loopless directed path through a :class:`Network`.

    Attributes
    ----------
    nodes:
        Visited nodes, ``(source, ..., target)``; at least two.
    edge_ids:
        Edge indices traversed, one per hop (``len(nodes) - 1``).
    cost:
        Sum of traversed edge weights.
    """

    nodes: tuple[Node, ...]
    edge_ids: tuple[int, ...]
    cost: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValidationError("a path needs at least two nodes")
        if len(self.edge_ids) != len(self.nodes) - 1:
            raise ValidationError(
                f"path with {len(self.nodes)} nodes must have "
                f"{len(self.nodes) - 1} edges, got {len(self.edge_ids)}"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise ValidationError(f"path revisits a node: {self.nodes}")

    @property
    def source(self) -> Node:
        return self.nodes[0]

    @property
    def target(self) -> Node:
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        return len(self.edge_ids)

    def __len__(self) -> int:
        return self.num_hops

    @classmethod
    def from_nodes(cls, network: Network, nodes: Sequence[Node]) -> "Path":
        """Build a path from a node sequence, validating each hop."""
        edge_ids = tuple(
            network.edge_id(u, v) for u, v in zip(nodes[:-1], nodes[1:])
        )
        cost = sum(network.edge(eid).weight for eid in edge_ids)
        return cls(tuple(nodes), edge_ids, cost)


def shortest_path(
    network: Network,
    source: Node,
    target: Node,
    banned_nodes: frozenset[Node] = frozenset(),
    banned_edges: frozenset[int] = frozenset(),
) -> Path | None:
    """Dijkstra shortest path by edge weight, or ``None`` if unreachable.

    ``banned_nodes`` and ``banned_edges`` are excluded from the search
    (used as the spur-path restriction inside Yen's algorithm).
    """
    network.node_index(source)
    network.node_index(target)
    if source == target:
        raise ValidationError("source and target must differ")
    if source in banned_nodes or target in banned_nodes:
        return None

    dist: dict[Node, float] = {source: 0.0}
    prev: dict[Node, tuple[Node, int]] = {}
    done: set[Node] = set()
    counter = 0  # tie-breaker so heapq never compares node objects
    heap: list[tuple[float, int, Node]] = [(0.0, counter, source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            break
        done.add(u)
        for eid in network.out_edges(u):
            if eid in banned_edges:
                continue
            edge = network.edge(eid)
            v = edge.target
            if v in banned_nodes or v in done:
                continue
            nd = d + edge.weight
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                prev[v] = (u, eid)
                counter += 1
                heapq.heappush(heap, (nd, counter, v))

    if target not in dist or (target not in prev and target != source):
        return None
    nodes: list[Node] = [target]
    edge_ids: list[int] = []
    u = target
    while u != source:
        p, eid = prev[u]
        nodes.append(p)
        edge_ids.append(eid)
        u = p
    nodes.reverse()
    edge_ids.reverse()
    return Path(tuple(nodes), tuple(edge_ids), dist[target])


def k_shortest_paths(
    network: Network,
    source: Node,
    target: Node,
    k: int,
    banned_edges: frozenset[int] = frozenset(),
) -> list[Path]:
    """Yen's algorithm: up to ``k`` loopless shortest paths, cost-ordered.

    Returns fewer than ``k`` paths when the graph does not contain that
    many distinct loopless paths, and an empty list when ``target`` is
    unreachable from ``source``.  ``banned_edges`` are excluded from
    every path (e.g. failed or fully drained links).
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    first = shortest_path(network, source, target, banned_edges=banned_edges)
    if first is None:
        return []
    paths: list[Path] = [first]
    # Candidate heap keyed by (cost, node sequence) for deterministic order.
    candidates: list[tuple[float, tuple[Node, ...], Path]] = []
    seen: set[tuple[Node, ...]] = {first.nodes}

    while len(paths) < k:
        prev_path = paths[-1]
        for i in range(prev_path.num_hops):
            spur_node = prev_path.nodes[i]
            root_nodes = prev_path.nodes[: i + 1]
            root_edges = prev_path.edge_ids[:i]
            root_cost = sum(network.edge(e).weight for e in root_edges)

            spur_banned = {
                p.edge_ids[i]
                for p in paths
                if p.nodes[: i + 1] == root_nodes and p.num_hops > i
            }
            banned_nodes = frozenset(root_nodes[:-1])

            spur = shortest_path(
                network,
                spur_node,
                target,
                banned_nodes=banned_nodes,
                banned_edges=frozenset(spur_banned) | banned_edges,
            )
            if spur is None:
                continue
            total_nodes = root_nodes + spur.nodes[1:]
            if total_nodes in seen:
                continue
            total = Path(
                total_nodes,
                root_edges + spur.edge_ids,
                root_cost + spur.cost,
            )
            seen.add(total_nodes)
            heapq.heappush(
                candidates, (total.cost, _node_key(total.nodes), total)
            )
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def _node_key(nodes: tuple[Node, ...]) -> tuple[str, ...]:
    """Deterministic, heterogeneous-safe sort key for a node sequence."""
    return tuple(repr(n) for n in nodes)


def edge_disjoint_paths(
    network: Network,
    source: Node,
    target: Node,
    k: int,
    banned_edges: frozenset[int] = frozenset(),
) -> list[Path]:
    """Up to ``k`` pairwise edge-disjoint paths, greedily shortest-first.

    Iteratively takes the shortest path and bans its edges before the
    next search.  This is the standard greedy heuristic (not Suurballe's
    optimal disjoint-pair algorithm), so the *number* of paths found can
    fall short of the true max-flow disjoint count on adversarial
    graphs; on research-network topologies it almost always matches.

    Edge-disjoint path sets matter operationally: a fiber cut takes out
    at most one of them, so a job spread over the set degrades instead
    of stalling.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    banned: set[int] = set(banned_edges)
    paths: list[Path] = []
    while len(paths) < k:
        path = shortest_path(
            network, source, target, banned_edges=frozenset(banned)
        )
        if path is None:
            break
        paths.append(path)
        banned.update(path.edge_ids)
    return paths


def build_path_sets(
    network: Network,
    od_pairs: Sequence[tuple[Node, Node]],
    k: int = 4,
    disjoint: bool = False,
    banned_edges: frozenset[int] = frozenset(),
) -> dict[tuple[Node, Node], list[Path]]:
    """Compute per-pair path sets: k-shortest (default) or edge-disjoint.

    Results are cached per distinct pair, so repeated pairs cost nothing
    extra.  Pairs with no connecting path map to an empty list.  With
    ``disjoint=True`` the (usually smaller) greedy edge-disjoint set is
    computed instead — see :func:`edge_disjoint_paths`.  ``banned_edges``
    (e.g. links currently failed or drained to zero for the whole
    horizon) are excluded from every path.
    """
    finder = edge_disjoint_paths if disjoint else k_shortest_paths
    banned = frozenset(banned_edges)
    cache: dict[tuple[Node, Node], list[Path]] = {}
    for pair in od_pairs:
        if pair not in cache:
            cache[pair] = finder(
                network, pair[0], pair[1], k, banned_edges=banned
            )
    return cache
