"""Time-varying link capacities: the ``C_e(j)`` of constraint (3).

The paper's capacity constraint is written per slice — ``C_e(j)`` — even
though "in all the experiments in this paper, each link capacity is
assumed to be a constant across the time slices."  Real research
networks are not constant: fibers go into maintenance, wavelengths are
pre-empted by standing circuits, and operators drain links before
upgrades.  A :class:`CapacityProfile` materializes the full
``(num_edges, num_slices)`` wavelength-count matrix that the
optimization layer consumes, with builders for the common cases.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from ..errors import ValidationError
from ..timegrid import TimeGrid
from .graph import Network

__all__ = ["CapacityProfile"]

Node = Hashable


class CapacityProfile:
    """A per-(edge, slice) wavelength-count matrix.

    Parameters
    ----------
    network:
        The network whose edges the profile covers.
    grid:
        The time discretization.
    matrix:
        Integer array of shape ``(network.num_edges, grid.num_slices)``.
        Entries must be non-negative (0 = link unusable on that slice)
        and must not exceed the edge's installed capacity.
    """

    def __init__(
        self, network: Network, grid: TimeGrid, matrix: np.ndarray
    ) -> None:
        matrix = np.asarray(matrix)
        expected = (network.num_edges, grid.num_slices)
        if matrix.shape != expected:
            raise ValidationError(
                f"capacity matrix must have shape {expected}, got {matrix.shape}"
            )
        if not np.issubdtype(matrix.dtype, np.integer):
            if not np.allclose(matrix, np.rint(matrix)):
                raise ValidationError("capacities must be whole wavelength counts")
            matrix = np.rint(matrix).astype(np.int64)
        else:
            matrix = matrix.astype(np.int64)
        if matrix.min(initial=0) < 0:
            raise ValidationError("capacities must be non-negative")
        installed = network.capacities()
        if np.any(matrix > installed[:, None]):
            raise ValidationError(
                "profile exceeds an edge's installed wavelength count"
            )
        self.network = network
        self.grid = grid
        self.matrix = matrix
        self.matrix.setflags(write=False)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, network: Network, grid: TimeGrid) -> "CapacityProfile":
        """Every edge at its installed capacity on every slice."""
        matrix = np.repeat(
            network.capacities()[:, None], grid.num_slices, axis=1
        )
        return cls(network, grid, matrix)

    @classmethod
    def with_maintenance(
        cls,
        network: Network,
        grid: TimeGrid,
        windows: Iterable[tuple[Node, Node, float, float, int]],
        bidirectional: bool = True,
    ) -> "CapacityProfile":
        """Constant profile with reduced capacity during maintenance windows.

        Each window is ``(u, v, t_start, t_end, remaining_capacity)``:
        during every slice that *overlaps* ``[t_start, t_end)``, the edge
        ``u -> v`` (and ``v -> u`` when ``bidirectional``) carries at
        most ``remaining_capacity`` wavelengths.  Overlapping windows on
        the same edge take the minimum.
        """
        profile = cls.constant(network, grid)
        matrix = profile.matrix.copy()
        for u, v, t0, t1, remaining in windows:
            if t1 <= t0:
                raise ValidationError(
                    f"maintenance window [{t0}, {t1}) on {u!r}->{v!r} is empty"
                )
            if remaining < 0:
                raise ValidationError("remaining capacity must be >= 0")
            edges = [network.edge_id(u, v)]
            if bidirectional and network.has_edge(v, u):
                edges.append(network.edge_id(v, u))
            # Slices overlapping [t0, t1): slice j = [t_j, t_{j+1}).
            starts = grid.boundaries[:-1]
            ends = grid.boundaries[1:]
            overlap = (starts < t1 - 1e-12) & (ends > t0 + 1e-12)
            for eid in edges:
                matrix[eid, overlap] = np.minimum(matrix[eid, overlap], remaining)
        return cls(network, grid, matrix)

    @classmethod
    def with_background_load(
        cls,
        network: Network,
        grid: TimeGrid,
        load: np.ndarray,
    ) -> "CapacityProfile":
        """Profile with a fixed background occupancy subtracted.

        ``load`` is an integer ``(num_edges, num_slices)`` array of
        wavelengths already reserved (e.g. standing lightpaths); the
        profile exposes what remains, floored at zero.
        """
        load = np.asarray(load)
        base = np.repeat(network.capacities()[:, None], grid.num_slices, axis=1)
        if load.shape != base.shape:
            raise ValidationError(
                f"background load must have shape {base.shape}, got {load.shape}"
            )
        if load.min(initial=0) < 0:
            raise ValidationError("background load must be non-negative")
        return cls(network, grid, np.maximum(base - load, 0))

    # ------------------------------------------------------------------
    # Re-basing onto other grids
    # ------------------------------------------------------------------
    def for_grid(self, grid: TimeGrid) -> "CapacityProfile":
        """Re-base the profile onto another grid with aligned boundaries.

        Needed by the online controller: each epoch schedules over a
        fresh grid starting at "now", while maintenance windows are
        defined in absolute time.  Every slice of ``grid`` must either
        coincide exactly with a slice of the original grid (same start
        and end boundaries) or lie entirely outside the original
        horizon, in which case the edge's installed capacity applies.
        Returns ``self`` when the grids already match.
        """
        if grid == self.grid:
            return self
        installed = self.network.capacities()
        matrix = np.repeat(installed[:, None], grid.num_slices, axis=1)
        old_bounds = self.grid.boundaries
        for j in range(grid.num_slices):
            start = grid.slice_start(j)
            end = grid.slice_end(j)
            if start >= self.grid.end - 1e-9 or end <= self.grid.start + 1e-9:
                continue  # outside the original horizon: installed capacity
            idx = int(np.searchsorted(old_bounds, start + 1e-9)) - 1
            if (
                idx < 0
                or idx >= self.grid.num_slices
                or abs(old_bounds[idx] - start) > 1e-9
                or abs(old_bounds[idx + 1] - end) > 1e-9
            ):
                raise ValidationError(
                    f"target slice [{start}, {end}) does not align with the "
                    "profile's grid; use matching slice boundaries"
                )
            matrix[:, j] = self.matrix[:, idx]
        return CapacityProfile(self.network, grid, matrix)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def capacity(self, edge_id: int, slice_index: int) -> int:
        """``C_e(j)`` for one edge and slice."""
        return int(self.matrix[edge_id, slice_index])

    def total_wavelength_slices(self) -> int:
        """Sum of all (edge, slice) wavelength capacity — a volume bound."""
        return int(self.matrix.sum())

    def outage_fraction(self) -> float:
        """Share of (edge, slice) cells below installed capacity."""
        installed = self.network.capacities()[:, None]
        return float(np.mean(self.matrix < installed))

    def __repr__(self) -> str:
        return (
            f"CapacityProfile(edges={self.matrix.shape[0]}, "
            f"slices={self.matrix.shape[1]}, "
            f"outage={self.outage_fraction():.1%})"
        )
