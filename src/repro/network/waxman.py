"""Waxman random research-network generator (BRITE-style).

The paper generates its random test networks with BRITE in Waxman mode
(references [28], [29]): nodes are placed uniformly at random on a plane
and the probability of connecting two nodes decays exponentially with
their Euclidean distance,

.. math:: P(u, v) = \\beta \\exp(-d(u, v) / (\\alpha \\cdot L)),

where ``L`` is the maximum possible distance.  Like BRITE's router-level
Waxman model we grow the graph *incrementally*: each new node attaches to
``m`` distinct existing nodes sampled with Waxman weights, which keeps the
graph connected and yields an average node degree of about ``2 m`` — the
paper's networks use an average degree of 4, i.e. ``m = 2``.

Every undirected attachment becomes a *pair* of directed links, matching
the paper's "pairs of links" accounting.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .graph import Network

__all__ = ["waxman_network"]


def waxman_network(
    num_nodes: int,
    avg_degree: int = 4,
    alpha: float = 0.15,
    beta: float = 0.2,
    capacity: int = 1,
    wavelength_rate: float = 20.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> Network:
    """Generate a connected Waxman random network.

    Parameters
    ----------
    num_nodes:
        Number of nodes (the paper uses 100–400).
    avg_degree:
        Target average node degree; must be even (each new node attaches
        with ``avg_degree / 2`` link pairs).  The paper uses 4.
    alpha:
        Waxman distance-decay parameter; larger values weaken the
        locality bias.
    beta:
        Waxman scale parameter; only affects relative weights here since
        attachment counts are fixed, kept for fidelity to the model.
    capacity:
        Wavelengths per directed link.
    wavelength_rate:
        Rate of one wavelength (default 20.0, the paper's 20 Gbps links
        on one wavelength; use :meth:`Network.with_wavelengths` to split).
    rng, seed:
        Randomness source: pass a ``numpy.random.Generator`` or a seed
        (mutually exclusive).

    Returns
    -------
    Network
        A strongly connected network with ``num_nodes * avg_degree / 2``
        link pairs (fewer only for very small graphs).  Node coordinates
        are attached as the ``positions`` attribute, mapping node id to
        an ``(x, y)`` tuple in the unit square.
    """
    if num_nodes < 2:
        raise ValidationError(f"num_nodes must be >= 2, got {num_nodes}")
    if avg_degree < 2 or avg_degree % 2 != 0:
        raise ValidationError(
            f"avg_degree must be an even integer >= 2, got {avg_degree}"
        )
    if not (0 < alpha and 0 < beta <= 1):
        raise ValidationError(
            f"need alpha > 0 and 0 < beta <= 1, got alpha={alpha}, beta={beta}"
        )
    if rng is not None and seed is not None:
        raise ValidationError("pass either rng or seed, not both")
    if rng is None:
        rng = np.random.default_rng(seed)

    m = avg_degree // 2
    coords = rng.random((num_nodes, 2))
    max_dist = float(np.sqrt(2.0))  # diameter of the unit square

    net = Network(wavelength_rate=wavelength_rate, name=f"waxman{num_nodes}")
    for node in range(num_nodes):
        net.add_node(node)

    for node in range(1, num_nodes):
        existing = np.arange(node)
        dists = np.linalg.norm(coords[existing] - coords[node], axis=1)
        weights = beta * np.exp(-dists / (alpha * max_dist))
        total = weights.sum()
        if total <= 0:  # pragma: no cover - numerically impossible for beta>0
            weights = np.ones_like(weights)
            total = weights.sum()
        picks = min(m, node)
        chosen = rng.choice(
            existing, size=picks, replace=False, p=weights / total
        )
        for neighbor in chosen:
            net.add_link_pair(int(neighbor), node, capacity)

    net.positions = {i: (float(coords[i, 0]), float(coords[i, 1])) for i in range(num_nodes)}
    return net
