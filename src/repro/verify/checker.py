"""The schedule-invariant checker: one place that knows the paper's rules.

Every guarantee the paper makes about a schedule is a checkable
invariant:

* **non-negativity** — wavelength counts are never negative (domain of
  constraint (10));
* **integrality** — deployable assignments are whole wavelengths
  (constraint (10) proper);
* **capacity** — per (edge, slice) load never exceeds ``C_e(j)``
  (constraint (3));
* **window** — grants lie inside ``[S_i, I((1+b)E_i)]`` (constraint (4));
* **continuity** — every granted path is an unbroken chain of links that
  exist in the network (the path-set definition behind ``P(s_i, d_i)``);
* **demand** — in complete-transfer (RET) mode, every job's full demand
  is delivered (constraint (15));
* **fairness** — every job's throughput meets the stage-2 floor
  ``Z_i >= (1 - alpha) Z*`` (constraint (9));
* **reference** — a serialized schedule only names jobs and nodes the
  problem actually contains (staleness detection, not a paper equation).

:func:`verify_schedule` evaluates all of them against either a live
result object (:class:`~repro.core.scheduler.ScheduleResult`,
:class:`~repro.core.ret.RetResult`, a raw assignment vector) or a
serialized grant list (:func:`repro.serialization.schedule_to_dict`
output), producing a :class:`VerificationReport` of typed
:class:`Violation` records instead of crashing or asserting.  Tests,
the simulator (``verify_epochs=``) and the ``repro verify`` CLI all
share this one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Mapping
from typing import Any

import numpy as np

from ..errors import ScheduleError, ValidationError
from ..lp.model import ProblemStructure
from ..network.graph import Network
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet

__all__ = [
    "CHECKS",
    "Violation",
    "VerificationReport",
    "verify_assignment",
    "verify_grants",
    "verify_schedule",
]

Node = Hashable

#: Every invariant class the checker knows, in report order.
CHECKS = (
    "nonnegativity",
    "integrality",
    "capacity",
    "window",
    "continuity",
    "demand",
    "fairness",
    "reference",
)

#: Default numeric tolerance: solver round-off below this is not a bug.
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to locate it.

    Attributes
    ----------
    code:
        Invariant class, one of :data:`CHECKS`.
    severity:
        ``"error"`` (the schedule is not deployable / not what it
        claims) or ``"warning"`` (suspicious but physically valid, e.g.
        declared metrics disagreeing with recomputed ones).
    message:
        Human-readable description.
    job_id:
        The offending job, when the violation is job-scoped.
    edge:
        ``(source, target)`` of the offending link, when link-scoped.
    slice_index:
        The offending time slice, when slice-scoped.
    amount:
        Magnitude of the violation (excess wavelengths, missing volume,
        throughput shortfall...), when quantifiable.
    """

    code: str
    severity: str
    message: str
    job_id: Any = None
    edge: tuple[Any, Any] | None = None
    slice_index: int | None = None
    amount: float | None = None

    def __str__(self) -> str:
        where = []
        if self.job_id is not None:
            where.append(f"job {self.job_id!r}")
        if self.edge is not None:
            where.append(f"edge {self.edge[0]!r}->{self.edge[1]!r}")
        if self.slice_index is not None:
            where.append(f"slice {self.slice_index}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.severity.upper()} {self.code}{loc}: {self.message}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verification pass.

    Attributes
    ----------
    violations:
        Every broken invariant found, in deterministic order (check
        order of :data:`CHECKS`, then position within the schedule).
    checks:
        The invariant classes this pass evaluated.  A class absent here
        (e.g. ``fairness`` when no ``Z*`` was available) was *skipped*,
        not passed.
    subject:
        What was verified (``"assignment"`` or ``"grants"``).
    num_jobs, num_items:
        Size of the verified instance: jobs in the problem and columns /
        grant rows in the schedule.
    """

    violations: tuple[Violation, ...]
    checks: tuple[str, ...]
    subject: str = "assignment"
    num_jobs: int = 0
    num_items: int = 0

    # ------------------------------------------------------------------
    @property
    def errors(self) -> tuple[Violation, ...]:
        """Error-severity violations only."""
        return tuple(v for v in self.violations if v.severity == "error")

    @property
    def warnings(self) -> tuple[Violation, ...]:
        """Warning-severity violations only."""
        return tuple(v for v in self.violations if v.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violation was found."""
        return not self.errors

    @property
    def codes(self) -> frozenset[str]:
        """The set of violated invariant classes."""
        return frozenset(v.code for v in self.violations)

    def by_code(self, code: str) -> tuple[Violation, ...]:
        """All violations of one invariant class."""
        if code not in CHECKS:
            raise ValidationError(
                f"unknown invariant class {code!r}; pick one of {CHECKS}"
            )
        return tuple(v for v in self.violations if v.code == code)

    def counts(self) -> dict[str, int]:
        """Violation count per evaluated invariant class."""
        return {c: len(self.by_code(c)) for c in self.checks}

    # ------------------------------------------------------------------
    def explain(self, max_lines: int = 50) -> str:
        """Multi-line description of every violation (or a clean bill)."""
        head = (
            f"verification of {self.subject}: {self.num_jobs} jobs, "
            f"{self.num_items} {'grants' if self.subject == 'grants' else 'columns'}"
        )
        lines = [head, f"checks run: {', '.join(self.checks)}"]
        if not self.violations:
            lines.append("all invariants hold")
            return "\n".join(lines)
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s):"
        )
        shown = self.violations[:max_lines]
        lines.extend(f"  {v}" for v in shown)
        if len(self.violations) > max_lines:
            lines.append(f"  ... and {len(self.violations) - max_lines} more")
        return "\n".join(lines)

    def render(self) -> str:
        """Compact per-invariant summary table."""
        width = max(len(c) for c in CHECKS)
        lines = [f"{'invariant':<{width}}  status"]
        lines.append("-" * (width + 9))
        for check in CHECKS:
            if check not in self.checks:
                status = "skipped"
            else:
                n = len(self.by_code(check))
                status = "ok" if n == 0 else f"{n} violation(s)"
            lines.append(f"{check:<{width}}  {status}")
        return "\n".join(lines)

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`~repro.errors.ScheduleError` on any error."""
        if not self.ok:
            raise ScheduleError(self.explain())
        return self


# ----------------------------------------------------------------------
# Vector engine: verify an assignment against its problem structure
# ----------------------------------------------------------------------
def verify_assignment(
    structure: ProblemStructure,
    x: np.ndarray,
    integral: bool = True,
    zstar: float | None = None,
    alpha: float | None = None,
    require_complete: bool = False,
    capacity: np.ndarray | None = None,
    tol: float = DEFAULT_TOL,
) -> VerificationReport:
    """Check an assignment vector against every applicable invariant.

    Window and continuity hold *by construction* for any correctly
    shaped vector (columns only exist for in-window slices of real
    paths), so those checks always pass here; they have teeth in
    :func:`verify_grants`, where the schedule arrives as untrusted data.

    Parameters
    ----------
    structure:
        The problem the assignment belongs to.
    x:
        Assignment vector of shape ``(structure.num_cols,)``.
    integral:
        Whether the assignment claims to be integer (LPD/LPDAR/exact);
        pass ``False`` for LP relaxation solutions.
    zstar, alpha:
        When both are given, the stage-2 fairness floor
        ``Z_i >= (1 - alpha) Z*`` is checked.
    require_complete:
        Check constraint (15): every job's full demand delivered
        (RET / complete-transfer semantics).
    capacity:
        Optional dense ``(num_edges, num_slices)`` capacity override
        replacing the structure's planning capacities — e.g. the
        fault-voided ground truth a simulator epoch executed against.
    tol:
        Numeric tolerance separating solver round-off from violations.
    """
    x = np.asarray(x, dtype=float)
    if x.shape != (structure.num_cols,):
        raise ValidationError(
            f"assignment must have shape ({structure.num_cols},), got {x.shape}"
        )
    violations: list[Violation] = []
    checks = ["nonnegativity", "capacity", "window", "continuity"]
    jobs = structure.jobs

    def _column_context(c: int) -> tuple[Any, int]:
        return jobs[int(structure.col_job[c])].id, int(structure.col_slice[c])

    # Non-negativity (domain of constraint (10)).
    for c in np.flatnonzero(x < -tol):
        job_id, j = _column_context(int(c))
        violations.append(
            Violation(
                "nonnegativity",
                "error",
                f"x = {x[c]:g} is negative",
                job_id=job_id,
                slice_index=j,
                amount=float(-x[c]),
            )
        )

    # Integrality (constraint (10)).
    if integral:
        checks.append("integrality")
        frac = np.abs(x - np.rint(x))
        for c in np.flatnonzero(frac > tol):
            job_id, j = _column_context(int(c))
            violations.append(
                Violation(
                    "integrality",
                    "error",
                    f"x = {x[c]:g} is fractional",
                    job_id=job_id,
                    slice_index=j,
                    amount=float(frac[c]),
                )
            )

    # Capacity (constraint (3)), against planning or override capacities.
    if capacity is not None:
        capacity = np.asarray(capacity, dtype=float)
        expected = (structure.network.num_edges, structure.grid.num_slices)
        if capacity.shape != expected:
            raise ValidationError(
                f"capacity override must have shape {expected}, "
                f"got {capacity.shape}"
            )
        rhs = capacity[structure.cap_row_edge, structure.cap_row_slice]
    else:
        rhs = structure.cap_rhs
    loads = structure.capacity_matrix @ np.maximum(x, 0.0)
    for r in np.flatnonzero(loads > rhs + tol):
        edge = structure.network.edge(int(structure.cap_row_edge[r]))
        violations.append(
            Violation(
                "capacity",
                "error",
                f"load {loads[r]:g} exceeds capacity {rhs[r]:g}",
                edge=(edge.source, edge.target),
                slice_index=int(structure.cap_row_slice[r]),
                amount=float(loads[r] - rhs[r]),
            )
        )

    delivered = structure.demand_matrix @ np.maximum(x, 0.0)

    # Demand satisfaction (constraint (15), complete-transfer mode).
    if require_complete:
        checks.append("demand")
        for i in np.flatnonzero(delivered < structure.demands - tol):
            violations.append(
                Violation(
                    "demand",
                    "error",
                    f"delivered {delivered[i]:g} of demand "
                    f"{structure.demands[i]:g} (normalized)",
                    job_id=jobs[int(i)].id,
                    amount=float(structure.demands[i] - delivered[i]),
                )
            )

    # Fairness floor (constraint (9)).
    if zstar is not None and alpha is not None:
        checks.append("fairness")
        floor = (1.0 - alpha) * zstar
        z = delivered / structure.demands
        for i in np.flatnonzero(z < floor - tol):
            violations.append(
                Violation(
                    "fairness",
                    "error",
                    f"Z = {z[i]:g} below floor (1 - {alpha:g}) Z* = {floor:g}",
                    job_id=jobs[int(i)].id,
                    amount=float(floor - z[i]),
                )
            )

    return VerificationReport(
        violations=tuple(
            sorted(violations, key=lambda v: CHECKS.index(v.code))
        ),
        checks=tuple(c for c in CHECKS if c in checks),
        subject="assignment",
        num_jobs=len(jobs),
        num_items=structure.num_cols,
    )


# ----------------------------------------------------------------------
# Grants engine: verify an untrusted (serialized) grant list
# ----------------------------------------------------------------------
def _normalize_grant(grant: Any) -> dict | None:
    """Accept serialized dicts and WavelengthGrant objects alike.

    Returns ``None`` for entries that are neither — the caller reports
    those as ``reference`` violations instead of crashing (grant lists
    are untrusted data).
    """
    if isinstance(grant, Mapping):
        path = grant.get("path")
        return {
            "job": grant.get("job"),
            "path": tuple(path) if isinstance(path, (list, tuple)) else (),
            "slice": grant.get("slice"),
            "wavelengths": grant.get("wavelengths"),
        }
    try:  # duck-typed WavelengthGrant
        return {
            "job": grant.job_id,
            "path": tuple(grant.path),
            "slice": grant.slice_index,
            "wavelengths": grant.wavelengths,
        }
    except (AttributeError, TypeError):
        return None


def verify_grants(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid,
    grants: Iterable[Any],
    capacity: np.ndarray | None = None,
    integral: bool = True,
    zstar: float | None = None,
    alpha: float | None = None,
    require_complete: bool = False,
    declared_throughputs: Mapping[Any, float] | None = None,
    tol: float = DEFAULT_TOL,
) -> VerificationReport:
    """Check a grant list (serialized schedule) against the problem.

    Unlike :func:`verify_assignment` this treats the schedule as
    *untrusted data*: grants naming unknown jobs or nodes, paths whose
    links do not exist, slices outside the grid or a job's window are
    all reported as typed violations — never exceptions — so a stale
    schedule checked against a newer problem degrades into a readable
    report.

    Parameters
    ----------
    network, jobs, grid:
        The problem the schedule claims to solve.
    grants:
        Grant rows: serialized dicts (``{"job", "path", "slice",
        "wavelengths"}``) or :class:`~repro.core.scheduler.WavelengthGrant`.
    capacity:
        Optional dense ``(num_edges, num_slices)`` matrix of ``C_e(j)``;
        defaults to installed capacity on every slice.
    integral, zstar, alpha, require_complete, tol:
        As for :func:`verify_assignment`.
    declared_throughputs:
        Optional job-id -> claimed ``Z_i`` mapping (the serialized
        ``job_throughputs`` block); recomputed values that disagree
        produce *warning*-severity ``demand`` violations.
    """
    num_slices = grid.num_slices
    if capacity is None:
        caps = network.capacities().astype(float)
        capacity = np.repeat(caps[:, None], num_slices, axis=1)
    else:
        capacity = np.asarray(capacity, dtype=float)
        expected = (network.num_edges, num_slices)
        if capacity.shape != expected:
            raise ValidationError(
                f"capacity matrix must have shape {expected}, "
                f"got {capacity.shape}"
            )

    violations: list[Violation] = []
    load = np.zeros((network.num_edges, num_slices))
    delivered = {job.id: 0.0 for job in jobs}
    known_ids = set(delivered)
    num_grants = 0

    for raw in grants:
        grant = _normalize_grant(raw)
        num_grants += 1
        if grant is None:
            violations.append(
                Violation(
                    "reference",
                    "error",
                    f"grant entry {raw!r} is not a grant (expected a "
                    "mapping or WavelengthGrant)",
                )
            )
            continue
        job_id = grant["job"]
        path = grant["path"]
        j = grant["slice"]
        w = grant["wavelengths"]

        job = None
        if job_id not in known_ids:
            violations.append(
                Violation(
                    "reference",
                    "error",
                    f"grant names job {job_id!r}, which the problem "
                    "does not contain",
                    job_id=job_id,
                )
            )
        else:
            job = jobs.by_id(job_id)

        # Wavelength count: sign and integrality.
        w_val = float(w) if isinstance(w, (int, float)) else float("nan")
        if not np.isfinite(w_val):
            violations.append(
                Violation(
                    "reference",
                    "error",
                    f"grant has non-numeric wavelength count {w!r}",
                    job_id=job_id,
                )
            )
            continue
        if w_val < -tol:
            violations.append(
                Violation(
                    "nonnegativity",
                    "error",
                    f"grant holds {w_val:g} wavelengths",
                    job_id=job_id,
                    slice_index=j if isinstance(j, int) else None,
                    amount=-w_val,
                )
            )
            continue  # a negative grant must not reduce link load
        if integral and abs(w_val - round(w_val)) > tol:
            violations.append(
                Violation(
                    "integrality",
                    "error",
                    f"grant holds a fractional {w_val:g} wavelengths",
                    job_id=job_id,
                    slice_index=j if isinstance(j, int) else None,
                    amount=abs(w_val - round(w_val)),
                )
            )

        # Slice index within the grid.
        slice_ok = isinstance(j, (int, np.integer)) and 0 <= j < num_slices
        if not slice_ok:
            violations.append(
                Violation(
                    "window",
                    "error",
                    f"slice {j!r} outside the grid's {num_slices} slices",
                    job_id=job_id,
                    amount=None,
                )
            )
        elif job is not None:
            window = grid.window_slices(job.start, job.end)
            if not (window.start <= j < window.stop):
                violations.append(
                    Violation(
                        "window",
                        "error",
                        f"slice {j} outside the job's allowed window "
                        f"{[window.start, window.stop - 1]} "
                        f"([S, E] = [{job.start:g}, {job.end:g}])",
                        job_id=job_id,
                        slice_index=int(j),
                    )
                )

        # Path continuity: an unbroken chain of existing links.
        path_edges: list[int] = []
        broken = False
        if len(path) < 2:
            violations.append(
                Violation(
                    "continuity",
                    "error",
                    f"path {list(path)!r} has no hops",
                    job_id=job_id,
                )
            )
            broken = True
        else:
            for u, v in zip(path[:-1], path[1:]):
                if not (network.has_node(u) and network.has_node(v)):
                    missing = u if not network.has_node(u) else v
                    violations.append(
                        Violation(
                            "reference",
                            "error",
                            f"path names node {missing!r}, which the "
                            "network does not contain",
                            job_id=job_id,
                            edge=(u, v),
                        )
                    )
                    broken = True
                elif not network.has_edge(u, v):
                    violations.append(
                        Violation(
                            "continuity",
                            "error",
                            "path hop crosses a link that does not exist",
                            job_id=job_id,
                            edge=(u, v),
                        )
                    )
                    broken = True
                else:
                    path_edges.append(network.edge_id(u, v))
        if job is not None and not broken and path:
            if path[0] != job.source or path[-1] != job.dest:
                violations.append(
                    Violation(
                        "continuity",
                        "error",
                        f"path runs {path[0]!r} -> {path[-1]!r} but the "
                        f"job transfers {job.source!r} -> {job.dest!r}",
                        job_id=job_id,
                    )
                )

        # Accumulate load and delivered volume for the global checks.
        if slice_ok and w_val > tol:
            for eid in path_edges:
                load[eid, j] += w_val
            if job is not None and not broken:
                delivered[job_id] += (
                    w_val * grid.length(int(j)) * network.wavelength_rate
                )

    # Capacity (constraint (3)).
    for eid, j in zip(*np.nonzero(load > capacity + tol)):
        edge = network.edge(int(eid))
        violations.append(
            Violation(
                "capacity",
                "error",
                f"load {load[eid, j]:g} exceeds capacity "
                f"{capacity[eid, j]:g}",
                edge=(edge.source, edge.target),
                slice_index=int(j),
                amount=float(load[eid, j] - capacity[eid, j]),
            )
        )

    # Demand satisfaction (complete-transfer mode).
    checks = [
        "nonnegativity",
        "capacity",
        "window",
        "continuity",
        "reference",
    ]
    if integral:
        checks.append("integrality")
    if require_complete:
        checks.append("demand")
        for job in jobs:
            if delivered[job.id] < job.size - tol * max(job.size, 1.0):
                violations.append(
                    Violation(
                        "demand",
                        "error",
                        f"delivered {delivered[job.id]:g} of {job.size:g}",
                        job_id=job.id,
                        amount=float(job.size - delivered[job.id]),
                    )
                )

    # Fairness floor (constraint (9)).
    if zstar is not None and alpha is not None:
        checks.append("fairness")
        floor = (1.0 - alpha) * zstar
        for job in jobs:
            z = delivered[job.id] / job.size
            if z < floor - tol:
                violations.append(
                    Violation(
                        "fairness",
                        "error",
                        f"Z = {z:g} below floor (1 - {alpha:g}) Z* = {floor:g}",
                        job_id=job.id,
                        amount=float(floor - z),
                    )
                )

    # Declared-vs-recomputed metrics (warnings: suspicious, not fatal).
    if declared_throughputs is not None:
        for job_id, claimed in declared_throughputs.items():
            if job_id not in known_ids:
                continue  # the reference check already flagged it
            actual = delivered[job_id] / jobs.by_id(job_id).size
            if abs(actual - float(claimed)) > max(1e-3, tol):
                violations.append(
                    Violation(
                        "demand",
                        "warning",
                        f"schedule declares Z = {float(claimed):g} but its "
                        f"grants deliver Z = {actual:g}",
                        job_id=job_id,
                        amount=abs(actual - float(claimed)),
                    )
                )

    return VerificationReport(
        violations=tuple(
            sorted(violations, key=lambda v: CHECKS.index(v.code))
        ),
        checks=tuple(c for c in CHECKS if c in checks),
        subject="grants",
        num_jobs=len(jobs),
        num_items=num_grants,
    )


# ----------------------------------------------------------------------
# Front-end dispatcher
# ----------------------------------------------------------------------
def verify_schedule(
    problem: Any,
    schedule: Any,
    which: str = "lpdar",
    jobs: JobSet | None = None,
    grid: TimeGrid | None = None,
    capacity: np.ndarray | None = None,
    require_complete: bool | None = None,
    tol: float = DEFAULT_TOL,
) -> VerificationReport:
    """Verify any schedule representation against its problem.

    Accepted ``schedule`` forms:

    * :class:`~repro.core.scheduler.ScheduleResult` — verifies the
      ``which`` assignment (``"lp"`` relaxes integrality) including the
      fairness floor at the result's own ``(Z*, alpha)``;
    * :class:`~repro.core.ret.RetResult` — verifies the ``which``
      assignment in complete-transfer mode (constraint (15));
    * ``numpy.ndarray`` — a raw assignment vector; ``problem`` must be
      the matching :class:`~repro.lp.model.ProblemStructure`;
    * ``dict`` — a serialized schedule
      (:func:`repro.serialization.schedule_to_dict` output); its
      ``zstar`` / ``alpha`` / ``job_throughputs`` fields, when present,
      arm the fairness and declared-metrics checks.

    ``problem`` is a :class:`~repro.lp.model.ProblemStructure`, or — for
    dict schedules — a bare :class:`~repro.network.graph.Network` with
    ``jobs`` and ``grid`` passed explicitly (the CLI path: no path sets
    needed just to check a schedule).

    ``require_complete`` overrides the per-form default (RET results
    default to True, everything else to False).
    """
    from ..core.ret import RetResult
    from ..core.scheduler import ScheduleResult

    if isinstance(schedule, ScheduleResult):
        # The fairness floor is armed only when the result claims to
        # meet it: bounded Remark-1 escalation may stop at alpha_max
        # with the floor unmet, which the result records openly
        # (``meets_fairness``) — a reported outcome, not a defect.
        fair = schedule.meets_fairness(which)
        structure = schedule.structure
        return verify_assignment(
            structure,
            schedule.assignment(which),
            integral=which != "lp",
            zstar=schedule.zstar if fair else None,
            alpha=schedule.alpha if fair else None,
            require_complete=bool(require_complete),
            capacity=capacity,
            tol=tol,
        )
    if isinstance(schedule, RetResult):
        structure = schedule.structure
        return verify_assignment(
            structure,
            getattr(schedule.assignments, f"x_{which}"),
            integral=which != "lp",
            require_complete=(
                True if require_complete is None else require_complete
            ),
            capacity=capacity,
            tol=tol,
        )
    if isinstance(schedule, np.ndarray):
        if not isinstance(problem, ProblemStructure):
            raise ValidationError(
                "verifying a raw assignment vector needs a ProblemStructure"
            )
        return verify_assignment(
            problem,
            schedule,
            integral=which != "lp",
            require_complete=bool(require_complete),
            capacity=capacity,
            tol=tol,
        )
    if isinstance(schedule, Mapping):
        if isinstance(problem, ProblemStructure):
            network = problem.network
            jobs = problem.jobs if jobs is None else jobs
            grid = problem.grid if grid is None else grid
            if capacity is None:
                capacity = problem.capacity_grid()
        elif isinstance(problem, Network):
            network = problem
            if jobs is None or grid is None:
                raise ValidationError(
                    "verifying a serialized schedule against a bare network "
                    "needs jobs= and grid="
                )
        else:
            raise ValidationError(
                f"cannot verify against problem of type "
                f"{type(problem).__name__}"
            )
        # Mirror the ScheduleResult rule: a schedule that *records* the
        # fairness floor as unmet (fairness_met: false, bounded Remark-1
        # escalation) skips the floor check; one claiming it — or
        # predating the field — is held to its claim.
        fair = bool(schedule.get("fairness_met", True))
        return verify_grants(
            network,
            jobs,
            grid,
            schedule.get("grants", ()),
            capacity=capacity,
            integral=schedule.get("algorithm", "lpdar") != "lp",
            zstar=schedule.get("zstar") if fair else None,
            alpha=schedule.get("alpha") if fair else None,
            require_complete=bool(require_complete),
            declared_throughputs=schedule.get("job_throughputs"),
            tol=tol,
        )
    raise ValidationError(
        f"cannot verify schedule of type {type(schedule).__name__}; "
        "pass a ScheduleResult, RetResult, assignment vector or "
        "serialized schedule dict"
    )
