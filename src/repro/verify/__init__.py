"""Schedule verification: invariant checkers, oracles, fuzzing, benchmarks.

The paper's guarantees are all *checkable invariants* — per-edge
wavelength capacity (eq. 2/8), integrality after LPD/LPDAR, window
containment, demand satisfaction (eq. 15), and the stage-2 fairness
floor ``Z_i >= (1 - alpha) Z*`` (eq. 9).  This package centralizes
them so the solver, scheduler, simulator, fault layer, tests, and CLI
all check the *same* definitions:

* :mod:`repro.verify.checker` — :func:`verify_schedule` /
  :func:`verify_assignment` / :func:`verify_grants` producing a
  :class:`VerificationReport` of typed :class:`Violation` records;
* :mod:`repro.verify.oracles` — differential testing of LPDAR against
  the exact MILP and highs-vs-simplex backend cross-checks;
* :mod:`repro.verify.fuzz` — seeded deterministic scenario generation
  (topology, workload, faults) driving pytest and ``repro verify
  --fuzz``;
* :mod:`repro.verify.bench` — the pinned micro-benchmark suite behind
  ``BENCH_verify.json``.
"""

from .bench import run_bench, write_bench
from .checker import (
    CHECKS,
    VerificationReport,
    Violation,
    verify_assignment,
    verify_grants,
    verify_schedule,
)
from .fuzz import (
    FuzzSummary,
    Scenario,
    ScenarioOutcome,
    make_scenario,
    run_fuzz,
    run_scenario,
    scenarios,
)
from .oracles import (
    DEFAULT_GAP_BOUND,
    SHARD_EXACT_TOL,
    CrossCheckResult,
    OracleResult,
    ShardedEquivalence,
    backend_cross_check,
    lpdar_vs_exact,
    sharded_vs_monolithic,
)

__all__ = [
    "CHECKS",
    "Violation",
    "VerificationReport",
    "verify_schedule",
    "verify_assignment",
    "verify_grants",
    "DEFAULT_GAP_BOUND",
    "SHARD_EXACT_TOL",
    "OracleResult",
    "CrossCheckResult",
    "ShardedEquivalence",
    "lpdar_vs_exact",
    "backend_cross_check",
    "sharded_vs_monolithic",
    "Scenario",
    "ScenarioOutcome",
    "FuzzSummary",
    "make_scenario",
    "scenarios",
    "run_scenario",
    "run_fuzz",
    "run_bench",
    "write_bench",
]
