"""Differential oracles: check the heuristics against independent solvers.

Two cross-checks, in the spirit of validating heuristics against exact
solutions on small instances (the paper itself could only compare LPDAR
to the LP upper bound at scale):

* :func:`lpdar_vs_exact` — run the full stage-1 / stage-2 / LPDAR
  pipeline *and* the exact stage-2 MILP (HiGHS-MIP, small instances
  only) on one structure, verify both solutions against the shared
  invariants, and measure the objective gap;
* :func:`backend_cross_check` — solve the same stage-2 LP with both the
  HiGHS backend and the pure-Python reference simplex and compare
  optimal objectives (the assignments may differ across degenerate
  optima; the value must not).

Both are plain functions over a :class:`~repro.lp.model.ProblemStructure`
so pytest can parameterize them directly, and the fuzzer
(:mod:`repro.verify.fuzz`) drives them over seeded random scenarios.

The documented gap bound
------------------------

:data:`DEFAULT_GAP_BOUND` asserts that LPDAR attains at least
``1 - DEFAULT_GAP_BOUND`` of the exact integer optimum's weighted
throughput on the small instances these oracles run on (a few jobs on a
ring / line / Abilene with one or two wavelengths per link).  The paper
reports LPDAR within a few percent of the *LP* bound for many-wavelength
networks, degrading as links carry fewer wavelengths; small fuzz
instances sit at that hard end, so the bound is looser than the paper's
headline numbers.  Empirically, 120 seeded fuzz scenarios (base seeds
0..119, the generator of :mod:`repro.verify.fuzz`) max out at a gap of
0.067, so 0.25 keeps nearly 4x margin while still catching a rounding
regression that loses a whole wavelength on these 1-3 wavelength links.
Note LPDAR may also *exceed* the exact stage-2 optimum: Algorithm 1
packs leftover wavelengths without honouring the fairness constraint (9)
that binds the MILP, so the gap is clamped at zero from below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exact import solve_stage2_exact
from ..core.lpdar import LpdarResult, lpdar
from ..core.stage2 import build_stage2_lp, solve_stage2_lp
from ..core.throughput import solve_stage1
from ..errors import InfeasibleProblemError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import solve_lp
from .checker import VerificationReport, verify_assignment

__all__ = [
    "DEFAULT_GAP_BOUND",
    "BACKEND_TOL",
    "OracleResult",
    "CrossCheckResult",
    "lpdar_vs_exact",
    "backend_cross_check",
]

#: LPDAR must reach at least ``1 - DEFAULT_GAP_BOUND`` of the exact
#: integer optimum on oracle-sized instances (see module docstring).
DEFAULT_GAP_BOUND = 0.25

#: Two LP backends must agree on the optimal objective to this tolerance.
BACKEND_TOL = 1e-6


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one LPDAR-vs-exact differential run.

    Attributes
    ----------
    zstar:
        Stage-1 maximum concurrent throughput of the instance.
    lp_objective:
        Stage-2 LP relaxation optimum (upper bound on the exact MILP).
    lpdar_objective, exact_objective:
        Weighted throughput of the LPDAR rounding and the true integer
        optimum.
    gap:
        ``max(0, exact - lpdar) / exact`` — LPDAR's relative shortfall
        against the exact optimum (0 when LPDAR matches or beats it).
    alpha, exact_alpha:
        Fairness slack used by the pipeline and by the exact solve (the
        latter may have been escalated per Remark 1 when the MILP was
        infeasible at the requested ``alpha``).
    lpdar_report, exact_report:
        Shared-invariant verification of both solutions.
    assignments:
        The pipeline's LP/LPD/LPDAR assignment bundle.
    """

    zstar: float
    lp_objective: float
    lpdar_objective: float
    exact_objective: float
    gap: float
    alpha: float
    exact_alpha: float
    lpdar_report: VerificationReport
    exact_report: VerificationReport
    assignments: LpdarResult

    @property
    def ok(self) -> bool:
        """Both solutions pass every shared invariant."""
        return self.lpdar_report.ok and self.exact_report.ok

    def within(self, bound: float = DEFAULT_GAP_BOUND) -> bool:
        """Whether the LPDAR gap respects the documented bound."""
        return self.gap <= bound + 1e-12


def lpdar_vs_exact(
    structure: ProblemStructure,
    alpha: float = 0.1,
    alpha_step: float = 0.1,
    weights: np.ndarray | None = None,
    time_limit: float | None = 30.0,
) -> OracleResult:
    """Differential-test LPDAR against the exact stage-2 MILP.

    Runs stage 1, the stage-2 LP at ``alpha``, the LPDAR rounding, and
    the exact MILP; when the MILP is infeasible at ``alpha`` (possible:
    integrality can make the fairness floor unattainable even though the
    LP relaxation never is — the situation Remark 1 addresses), ``alpha``
    is escalated by ``alpha_step`` for the exact solve only, so the
    comparison is against the tightest-feasible exact optimum.

    Raises
    ------
    ValidationError
        The instance exceeds the MILP size guard — keep oracle
        instances small by construction.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
    if alpha_step <= 0:
        raise ValidationError(f"alpha_step must be positive, got {alpha_step}")

    stage1 = solve_stage1(structure)
    stage2 = solve_stage2_lp(structure, stage1.zstar, alpha, weights)
    rounded = lpdar(structure, stage2.x)

    exact_alpha = alpha
    while True:
        try:
            exact = solve_stage2_exact(
                structure, stage1.zstar, exact_alpha, weights,
                time_limit=time_limit,
            )
            break
        except InfeasibleProblemError:
            if exact_alpha >= 1.0:
                raise
            exact_alpha = min(1.0, exact_alpha + alpha_step)

    lpdar_objective = structure.weighted_throughput(rounded.x_lpdar)
    exact_objective = structure.weighted_throughput(exact.x)
    if exact_objective > 1e-12:
        gap = max(0.0, exact_objective - lpdar_objective) / exact_objective
    else:
        gap = 0.0

    lpdar_report = verify_assignment(structure, rounded.x_lpdar)
    exact_report = verify_assignment(
        structure,
        exact.x,
        zstar=stage1.zstar,
        alpha=exact_alpha,
    )
    return OracleResult(
        zstar=stage1.zstar,
        lp_objective=stage2.objective,
        lpdar_objective=lpdar_objective,
        exact_objective=exact_objective,
        gap=gap,
        alpha=alpha,
        exact_alpha=exact_alpha,
        lpdar_report=lpdar_report,
        exact_report=exact_report,
        assignments=rounded,
    )


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of one highs-vs-simplex backend comparison.

    Attributes
    ----------
    highs_objective, simplex_objective:
        Optimal objectives reported by the two backends.
    difference:
        Absolute objective disagreement.
    agree:
        Whether the difference is within :data:`BACKEND_TOL` (scaled by
        the objective's magnitude).
    """

    highs_objective: float
    simplex_objective: float
    difference: float
    agree: bool


def backend_cross_check(
    structure: ProblemStructure,
    alpha: float = 0.1,
    tol: float = BACKEND_TOL,
) -> CrossCheckResult:
    """Solve the stage-2 LP with both backends; the optima must agree.

    The reference simplex is dense pure Python — keep instances small
    (the fuzzer's default sizes are fine).  Assignments are allowed to
    differ (degenerate optima are common on symmetric topologies); the
    *objective value* is the contract.
    """
    zstar = solve_stage1(structure).zstar
    problem = build_stage2_lp(structure, zstar, alpha)
    highs = solve_lp(problem, backend="highs")
    simplex = solve_lp(problem, backend="simplex")
    difference = abs(highs.objective - simplex.objective)
    scale = max(1.0, abs(highs.objective))
    return CrossCheckResult(
        highs_objective=highs.objective,
        simplex_objective=simplex.objective,
        difference=difference,
        agree=difference <= tol * scale,
    )
