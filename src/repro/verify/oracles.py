"""Differential oracles: check the heuristics against independent solvers.

Two cross-checks, in the spirit of validating heuristics against exact
solutions on small instances (the paper itself could only compare LPDAR
to the LP upper bound at scale):

* :func:`lpdar_vs_exact` — run the full stage-1 / stage-2 / LPDAR
  pipeline *and* the exact stage-2 MILP (HiGHS-MIP, small instances
  only) on one structure, verify both solutions against the shared
  invariants, and measure the objective gap;
* :func:`backend_cross_check` — solve the same stage-2 LP with both the
  HiGHS backend and the pure-Python reference simplex and compare
  optimal objectives (the assignments may differ across degenerate
  optima; the value must not).

Both are plain functions over a :class:`~repro.lp.model.ProblemStructure`
so pytest can parameterize them directly, and the fuzzer
(:mod:`repro.verify.fuzz`) drives them over seeded random scenarios.

The documented gap bound
------------------------

:data:`DEFAULT_GAP_BOUND` asserts that LPDAR attains at least
``1 - DEFAULT_GAP_BOUND`` of the exact integer optimum's weighted
throughput on the small instances these oracles run on (a few jobs on a
ring / line / Abilene with one or two wavelengths per link).  The paper
reports LPDAR within a few percent of the *LP* bound for many-wavelength
networks, degrading as links carry fewer wavelengths; small fuzz
instances sit at that hard end, so the bound is looser than the paper's
headline numbers.  Empirically, 120 seeded fuzz scenarios (base seeds
0..119, the generator of :mod:`repro.verify.fuzz`) max out at a gap of
0.067, so 0.25 keeps nearly 4x margin while still catching a rounding
regression that loses a whole wavelength on these 1-3 wavelength links.
Note LPDAR may also *exceed* the exact stage-2 optimum: Algorithm 1
packs leftover wavelengths without honouring the fairness constraint (9)
that binds the MILP, so the gap is clamped at zero from below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exact import solve_stage2_exact
from ..core.lpdar import LpdarResult, lpdar
from ..core.stage2 import build_stage2_lp, solve_stage2_lp
from ..core.throughput import solve_stage1
from ..errors import InfeasibleProblemError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import solve_lp
from .checker import VerificationReport, verify_assignment

__all__ = [
    "DEFAULT_GAP_BOUND",
    "BACKEND_TOL",
    "SHARD_EXACT_TOL",
    "OracleResult",
    "CrossCheckResult",
    "ShardedEquivalence",
    "lpdar_vs_exact",
    "backend_cross_check",
    "sharded_vs_monolithic",
]

#: LPDAR must reach at least ``1 - DEFAULT_GAP_BOUND`` of the exact
#: integer optimum on oracle-sized instances (see module docstring).
DEFAULT_GAP_BOUND = 0.25

#: Two LP backends must agree on the optimal objective to this tolerance.
BACKEND_TOL = 1e-6

#: Sharded and monolithic solves of the *same LPs* must agree on ``Z*``
#: and (at matching alpha) on the stage-2 LP optimum to this relative
#: tolerance; only the rounded integer assignments may genuinely differ.
SHARD_EXACT_TOL = 1e-6


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one LPDAR-vs-exact differential run.

    Attributes
    ----------
    zstar:
        Stage-1 maximum concurrent throughput of the instance.
    lp_objective:
        Stage-2 LP relaxation optimum (upper bound on the exact MILP).
    lpdar_objective, exact_objective:
        Weighted throughput of the LPDAR rounding and the true integer
        optimum.
    gap:
        ``max(0, exact - lpdar) / exact`` — LPDAR's relative shortfall
        against the exact optimum (0 when LPDAR matches or beats it).
    alpha, exact_alpha:
        Fairness slack used by the pipeline and by the exact solve (the
        latter may have been escalated per Remark 1 when the MILP was
        infeasible at the requested ``alpha``).
    lpdar_report, exact_report:
        Shared-invariant verification of both solutions.
    assignments:
        The pipeline's LP/LPD/LPDAR assignment bundle.
    """

    zstar: float
    lp_objective: float
    lpdar_objective: float
    exact_objective: float
    gap: float
    alpha: float
    exact_alpha: float
    lpdar_report: VerificationReport
    exact_report: VerificationReport
    assignments: LpdarResult

    @property
    def ok(self) -> bool:
        """Both solutions pass every shared invariant."""
        return self.lpdar_report.ok and self.exact_report.ok

    def within(self, bound: float = DEFAULT_GAP_BOUND) -> bool:
        """Whether the LPDAR gap respects the documented bound."""
        return self.gap <= bound + 1e-12


def lpdar_vs_exact(
    structure: ProblemStructure,
    alpha: float = 0.1,
    alpha_step: float = 0.1,
    weights: np.ndarray | None = None,
    time_limit: float | None = 30.0,
) -> OracleResult:
    """Differential-test LPDAR against the exact stage-2 MILP.

    Runs stage 1, the stage-2 LP at ``alpha``, the LPDAR rounding, and
    the exact MILP; when the MILP is infeasible at ``alpha`` (possible:
    integrality can make the fairness floor unattainable even though the
    LP relaxation never is — the situation Remark 1 addresses), ``alpha``
    is escalated by ``alpha_step`` for the exact solve only, so the
    comparison is against the tightest-feasible exact optimum.

    Raises
    ------
    ValidationError
        The instance exceeds the MILP size guard — keep oracle
        instances small by construction.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
    if alpha_step <= 0:
        raise ValidationError(f"alpha_step must be positive, got {alpha_step}")

    stage1 = solve_stage1(structure)
    stage2 = solve_stage2_lp(structure, stage1.zstar, alpha, weights)
    rounded = lpdar(structure, stage2.x)

    exact_alpha = alpha
    while True:
        try:
            exact = solve_stage2_exact(
                structure, stage1.zstar, exact_alpha, weights,
                time_limit=time_limit,
            )
            break
        except InfeasibleProblemError:
            if exact_alpha >= 1.0:
                raise
            exact_alpha = min(1.0, exact_alpha + alpha_step)

    lpdar_objective = structure.weighted_throughput(rounded.x_lpdar)
    exact_objective = structure.weighted_throughput(exact.x)
    if exact_objective > 1e-12:
        gap = max(0.0, exact_objective - lpdar_objective) / exact_objective
    else:
        gap = 0.0

    lpdar_report = verify_assignment(structure, rounded.x_lpdar)
    exact_report = verify_assignment(
        structure,
        exact.x,
        zstar=stage1.zstar,
        alpha=exact_alpha,
    )
    return OracleResult(
        zstar=stage1.zstar,
        lp_objective=stage2.objective,
        lpdar_objective=lpdar_objective,
        exact_objective=exact_objective,
        gap=gap,
        alpha=alpha,
        exact_alpha=exact_alpha,
        lpdar_report=lpdar_report,
        exact_report=exact_report,
        assignments=rounded,
    )


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of one highs-vs-simplex backend comparison.

    Attributes
    ----------
    highs_objective, simplex_objective:
        Optimal objectives reported by the two backends.
    difference:
        Absolute objective disagreement.
    agree:
        Whether the difference is within :data:`BACKEND_TOL` (scaled by
        the objective's magnitude).
    """

    highs_objective: float
    simplex_objective: float
    difference: float
    agree: bool


def backend_cross_check(
    structure: ProblemStructure,
    alpha: float = 0.1,
    tol: float = BACKEND_TOL,
) -> CrossCheckResult:
    """Solve the stage-2 LP with both backends; the optima must agree.

    The reference simplex is dense pure Python — keep instances small
    (the fuzzer's default sizes are fine).  Assignments are allowed to
    differ (degenerate optima are common on symmetric topologies); the
    *objective value* is the contract.
    """
    zstar = solve_stage1(structure).zstar
    problem = build_stage2_lp(structure, zstar, alpha)
    highs = solve_lp(problem, backend="highs")
    simplex = solve_lp(problem, backend="simplex")
    difference = abs(highs.objective - simplex.objective)
    scale = max(1.0, abs(highs.objective))
    return CrossCheckResult(
        highs_objective=highs.objective,
        simplex_objective=simplex.objective,
        difference=difference,
        agree=difference <= tol * scale,
    )


@dataclass(frozen=True)
class ShardedEquivalence:
    """Outcome of one sharded-vs-monolithic differential run.

    Attributes
    ----------
    num_shards:
        How many independent subproblems the partition found.
    grant_identical:
        The merged LPDAR assignment equals the monolithic one exactly
        (every grant, bit for bit) at the same final ``alpha``.  Always
        true for single-shard instances; for multi-shard instances the
        LPs have the same optima but possibly different optimal
        vertices, so this may be ``False`` with the run still passing.
    zstar_monolithic, zstar_sharded:
        Stage-1 optima; must agree to :data:`SHARD_EXACT_TOL`
        (relative).
    lp_objective_monolithic, lp_objective_sharded:
        Stage-2 LP optima at each pipeline's final ``alpha``; compared
        (to :data:`SHARD_EXACT_TOL`) only when the alphas match.
    objective_monolithic, objective_sharded:
        Weighted throughput of the deployable LPDAR schedules; their
        relative difference must stay within the ``gap_bound``.
    alpha_monolithic, alpha_sharded:
        Final fairness slacks after Remark-1 escalation.
    report:
        Shared-invariant verification of the **merged** schedule.
    failures:
        Human-readable equivalence violations; empty means the oracle
        passed.
    """

    num_shards: int
    grant_identical: bool
    zstar_monolithic: float
    zstar_sharded: float
    lp_objective_monolithic: float
    lp_objective_sharded: float
    objective_monolithic: float
    objective_sharded: float
    alpha_monolithic: float
    alpha_sharded: float
    report: VerificationReport
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def _rel_diff(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def sharded_vs_monolithic(
    network,
    jobs,
    grid=None,
    *,
    k_paths: int = 2,
    alpha: float = 0.1,
    alpha_step: float = 0.15,
    alpha_max: float = 1.0,
    capacity_profile=None,
    workers: int = 1,
    gap_bound: float = DEFAULT_GAP_BOUND,
    tol: float = SHARD_EXACT_TOL,
) -> ShardedEquivalence:
    """Differential-test the decomposed solve against the monolithic one.

    Runs :class:`~repro.core.scheduler.Scheduler` and
    :class:`~repro.parallel.sharded.ShardedScheduler` with identical
    knobs on the same instance and checks the equivalence contract:

    * the merged schedule passes every shared invariant;
    * ``Z*`` agrees to ``tol`` (relative) — exact decomposition;
    * at matching final ``alpha``, the stage-2 LP optima agree to
      ``tol`` — the shard LPs are restrictions of the monolithic LP;
    * the deployable LPDAR objectives agree to ``gap_bound``
      (relative) — different optimal vertices may round differently,
      but never materially;
    * or, stronger, the assignments are grant-identical (guaranteed
      when the partition finds a single shard).
    """
    from ..core.scheduler import Scheduler
    from ..parallel.partition import partition_structure
    from ..parallel.sharded import ShardedScheduler

    knobs = dict(
        k_paths=k_paths, alpha=alpha, alpha_step=alpha_step, alpha_max=alpha_max
    )
    mono = Scheduler(network, **knobs).schedule(
        jobs, grid, capacity_profile=capacity_profile
    )
    sharded = ShardedScheduler(network, workers=workers, **knobs).schedule(
        jobs, grid, capacity_profile=capacity_profile
    )
    num_shards = len(partition_structure(mono.structure))

    failures: list[str] = []
    # verify_schedule arms the fairness check from the schedule's own
    # meets-fairness claim, exactly as for monolithic results.
    report = sharded.verify()
    if not report.ok:
        failures.append(
            "merged schedule violates invariants:\n" + report.explain()
        )

    grant_identical = bool(
        mono.alpha == sharded.alpha and np.array_equal(mono.x, sharded.x)
    )
    obj_mono = mono.weighted_throughput("lpdar")
    obj_sharded = sharded.weighted_throughput("lpdar")
    if not grant_identical:
        if _rel_diff(mono.zstar, sharded.zstar) > tol:
            failures.append(
                f"Z* disagrees: monolithic={mono.zstar:.9f} "
                f"sharded={sharded.zstar:.9f}"
            )
        if (
            mono.alpha == sharded.alpha
            and _rel_diff(mono.stage2.objective, sharded.stage2.objective) > tol
        ):
            failures.append(
                f"stage-2 LP optimum disagrees at alpha={mono.alpha}: "
                f"monolithic={mono.stage2.objective:.9f} "
                f"sharded={sharded.stage2.objective:.9f}"
            )
        if _rel_diff(obj_mono, obj_sharded) > gap_bound:
            failures.append(
                f"LPDAR objectives diverge beyond gap bound {gap_bound}: "
                f"monolithic={obj_mono:.9f} sharded={obj_sharded:.9f}"
            )
    if num_shards == 1 and not grant_identical:
        failures.append(
            "single-shard instance must be grant-identical to the "
            f"monolithic solve (alpha {mono.alpha} vs {sharded.alpha})"
        )

    return ShardedEquivalence(
        num_shards=num_shards,
        grant_identical=grant_identical,
        zstar_monolithic=mono.zstar,
        zstar_sharded=sharded.zstar,
        lp_objective_monolithic=mono.stage2.objective,
        lp_objective_sharded=sharded.stage2.objective,
        objective_monolithic=obj_mono,
        objective_sharded=obj_sharded,
        alpha_monolithic=mono.alpha,
        alpha_sharded=sharded.alpha,
        report=report,
        failures=tuple(failures),
    )
