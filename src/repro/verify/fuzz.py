"""Seeded scenario fuzzer: random (topology, workload, faults) triples.

One integer seed deterministically produces one :class:`Scenario` — a
small network, a grid-aligned workload and (for a third of the seeds) a
random fault timeline.  :func:`run_scenario` pushes the scenario through
the full pipeline and checks everything that is checkable:

* the LPDAR schedule passes every shared invariant
  (:func:`repro.verify.checker.verify_assignment`), with the Scheduler
  allowed to escalate ``alpha`` all the way to 1.0 so the fairness floor
  is genuinely satisfiable;
* the serialized form of the same schedule passes the untrusted-data
  engine (:func:`repro.verify.checker.verify_grants`) — every fuzz run
  exercises both code paths;
* on oracle-sized instances, LPDAR stays within the documented gap of
  the exact MILP and the two LP backends agree
  (:mod:`repro.verify.oracles`);
* fault scenarios run the periodic controller with ``verify_epochs=True``
  so every epoch's planned and fault-voided allocation is checked.

Scenario generation is deliberately biased toward *small* instances
(most seeds draw 1–3 jobs on a 4–6 node topology): small cases are
where the exact oracle is available, and when a seed fails, the
offending instance is already near-minimal — the fuzzer's substitute
for shrinking.

Determinism contract: scenario ``i`` of a run with base seed ``s`` uses
``numpy.random.default_rng(s * 1_000_003 + i)`` and nothing else, so
``repro verify --fuzz N --seed S`` reproduces bit-identical scenarios
on every machine and the failing seed printed in a report is enough to
replay one scenario locally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import Scheduler
from ..errors import ReproError
from ..faults.schedule import FaultSchedule
from ..engine import build_structure
from ..network import topologies
from ..network.graph import Network
from ..serialization import schedule_to_dict
from ..sim.simulator import Simulation
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from .checker import VerificationReport, verify_grants, verify_schedule
from .oracles import DEFAULT_GAP_BOUND, backend_cross_check, lpdar_vs_exact

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "FuzzSummary",
    "make_scenario",
    "scenarios",
    "run_scenario",
    "run_fuzz",
    "fleet_fuzz_scenario",
]

#: Seed stride separating consecutive scenarios of one fuzz run.
SEED_STRIDE = 1_000_003

#: Instances above this many columns skip the exact-MILP oracle.
ORACLE_MAX_COLS = 1500

#: Instances above this many columns skip the dense reference simplex.
CROSS_CHECK_MAX_COLS = 400


@dataclass(frozen=True)
class Scenario:
    """One deterministic fuzz case.

    Attributes
    ----------
    seed:
        The exact rng seed that generated (and replays) this scenario.
    network, jobs, grid:
        The instance.
    fault_schedule:
        Fault timeline for simulator scenarios, ``None`` for offline
        (schedule + oracle) scenarios.
    description:
        One-line human summary (topology, size, fault count).
    """

    seed: int
    network: Network
    jobs: JobSet
    grid: TimeGrid
    fault_schedule: FaultSchedule | None
    description: str

    @property
    def kind(self) -> str:
        """``"fault-sim"`` or ``"offline"``."""
        return "fault-sim" if self.fault_schedule is not None else "offline"


def make_scenario(seed: int, allow_faults: bool = True) -> Scenario:
    """Deterministically generate the scenario belonging to ``seed``."""
    rng = np.random.default_rng(seed)

    # Topology: small rings and lines dominate; Abilene appears rarely.
    pick = rng.choice(4, p=[0.4, 0.3, 0.2, 0.1])
    capacity = int(rng.integers(1, 4))
    if pick == 0:
        n = int(rng.integers(4, 7))
        network = topologies.ring(n, capacity=capacity)
    elif pick == 1:
        n = int(rng.integers(3, 6))
        network = topologies.line(n, capacity=capacity)
    elif pick == 2:
        capacity = 1
        n = int(rng.integers(4, 6))
        network = topologies.full_mesh(n, capacity=capacity)
    else:
        capacity = 1
        network = topologies.abilene(capacity=capacity, wavelength_rate=1.0)

    num_slices = int(rng.integers(3, 6))
    grid = TimeGrid.uniform(num_slices)

    # Small-instance bias: most scenarios draw 1-3 jobs.
    num_jobs = int(rng.choice([1, 2, 3, 4, 5], p=[0.25, 0.3, 0.2, 0.15, 0.1]))
    nodes = network.nodes
    jobs = []
    for i in range(num_jobs):
        src, dst = rng.choice(len(nodes), size=2, replace=False)
        first = int(rng.integers(0, num_slices))
        last = int(rng.integers(first + 1, num_slices + 1))
        jobs.append(
            Job(
                id=i,
                source=nodes[int(src)],
                dest=nodes[int(dst)],
                size=float(rng.uniform(0.5, 6.0)),
                start=float(first),
                end=float(last),
            )
        )
    job_set = JobSet(jobs)

    fault_schedule = None
    if allow_faults and rng.random() < 1.0 / 3.0:
        fault_schedule = FaultSchedule.random(
            network,
            horizon=float(num_slices) * 2.0,
            mtbf=float(rng.uniform(3.0, 12.0)),
            mttr=float(rng.uniform(0.5, 2.0)),
            seed=int(rng.integers(0, 2**31 - 1)),
            degrade_prob=float(rng.choice([0.0, 0.5])),
        )
    description = (
        f"seed={seed} {network.name or 'net'}(nodes={network.num_nodes}, "
        f"cap={capacity}) jobs={num_jobs} slices={num_slices}"
        + (f" faults={len(fault_schedule)}" if fault_schedule else "")
    )
    return Scenario(
        seed=seed,
        network=network,
        jobs=job_set,
        grid=grid,
        fault_schedule=fault_schedule,
        description=description,
    )


def scenarios(count: int, seed: int = 0, allow_faults: bool = True) -> list[Scenario]:
    """The ``count`` deterministic scenarios of a fuzz run."""
    return [
        make_scenario(seed * SEED_STRIDE + i, allow_faults=allow_faults)
        for i in range(count)
    ]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything one scenario run produced.

    Attributes
    ----------
    scenario:
        The case that ran.
    report:
        Invariant verification of the main schedule (or of the last
        checked epoch for fault scenarios; ``None`` when the scenario
        died before producing one).
    gap:
        LPDAR-vs-exact relative gap, when the oracle ran.
    backend_agree:
        Outcome of the highs-vs-simplex cross-check, when it ran.
    failures:
        Human-readable failure strings; empty means the scenario passed.
    """

    scenario: Scenario
    report: VerificationReport | None
    gap: float | None
    backend_agree: bool | None
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_scenario(
    scenario: Scenario,
    gap_bound: float = DEFAULT_GAP_BOUND,
    oracle: bool = True,
) -> ScenarioOutcome:
    """Run one scenario end to end; collect failures instead of raising."""
    failures: list[str] = []
    report: VerificationReport | None = None
    gap: float | None = None
    backend_agree: bool | None = None

    if scenario.fault_schedule is not None:
        try:
            sim = Simulation(
                scenario.network,
                policy="reduce",
                fault_schedule=scenario.fault_schedule,
                verify_epochs=True,
            )
            result = sim.run(scenario.jobs, horizon=scenario.grid.end * 3)
        except ReproError as exc:
            failures.append(f"fault simulation failed verification: {exc}")
        else:
            if result.verification:
                report = result.verification[-1]
        return ScenarioOutcome(
            scenario, report, gap, backend_agree, tuple(failures)
        )

    structure = build_structure(
        scenario.network, scenario.jobs, scenario.grid, k_paths=2
    )
    # alpha_max=1.0: let Remark-1 escalation run until the floor is
    # genuinely satisfiable, so a fairness flag is a real bug.
    scheduler = Scheduler(
        scenario.network, k_paths=2, alpha=0.1, alpha_step=0.15, alpha_max=1.0
    )
    result = scheduler.schedule(scenario.jobs, scenario.grid)

    report = verify_schedule(None, result)
    if not report.ok:
        failures.append(
            "LPDAR schedule violates invariants:\n" + report.explain()
        )

    # The serialized form must verify through the untrusted-data engine.
    serialized = schedule_to_dict(result)
    grants_report = verify_grants(
        scenario.network,
        scenario.jobs,
        scenario.grid,
        serialized["grants"],
        capacity=result.structure.capacity_grid(),
        zstar=serialized["zstar"],
        alpha=serialized["alpha"],
        declared_throughputs=serialized["job_throughputs"],
    )
    if not grants_report.ok:
        failures.append(
            "serialized schedule violates invariants:\n"
            + grants_report.explain()
        )

    if oracle and structure.num_cols <= ORACLE_MAX_COLS:
        outcome = lpdar_vs_exact(structure)
        gap = outcome.gap
        if not outcome.ok:
            failures.append(
                "oracle solution violates invariants:\n"
                + outcome.exact_report.explain()
            )
        if not outcome.within(gap_bound):
            failures.append(
                f"LPDAR gap {outcome.gap:.4f} exceeds bound {gap_bound:.4f} "
                f"(lpdar={outcome.lpdar_objective:.6f}, "
                f"exact={outcome.exact_objective:.6f})"
            )
    if structure.num_cols <= CROSS_CHECK_MAX_COLS:
        cross = backend_cross_check(structure)
        backend_agree = cross.agree
        if not cross.agree:
            failures.append(
                f"LP backends disagree: highs={cross.highs_objective:.9f} "
                f"simplex={cross.simplex_objective:.9f}"
            )

    return ScenarioOutcome(scenario, report, gap, backend_agree, tuple(failures))


@dataclass(frozen=True)
class FuzzSummary:
    """Aggregate of one fuzz run.

    Attributes
    ----------
    outcomes:
        Per-scenario outcomes, seed order.
    """

    outcomes: tuple[ScenarioOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def num_failed(self) -> int:
        return sum(not o.ok for o in self.outcomes)

    @property
    def failing_seeds(self) -> tuple[int, ...]:
        return tuple(o.scenario.seed for o in self.outcomes if not o.ok)

    @property
    def max_gap(self) -> float:
        """Largest observed LPDAR-vs-exact gap (0.0 when none ran)."""
        gaps = [o.gap for o in self.outcomes if o.gap is not None]
        return max(gaps, default=0.0)

    def render(self) -> str:
        """Per-scenario one-liners plus a verdict line."""
        lines = []
        for o in self.outcomes:
            status = "ok" if o.ok else "FAIL"
            extra = f" gap={o.gap:.4f}" if o.gap is not None else ""
            lines.append(f"[{status}] {o.scenario.description}{extra}")
            for failure in o.failures:
                first = failure.splitlines()[0]
                lines.append(f"       {first}")
        verdict = (
            f"{len(self.outcomes)} scenarios, {self.num_failed} failed, "
            f"max oracle gap {self.max_gap:.4f}"
        )
        if self.failing_seeds:
            verdict += f"; failing seeds: {list(self.failing_seeds)}"
        lines.append(verdict)
        return "\n".join(lines)


def fleet_fuzz_scenario(
    seed: int,
    gap_bound: float = DEFAULT_GAP_BOUND,
    oracle: bool = True,
    allow_faults: bool = True,
) -> ScenarioOutcome:
    """Fleet task: regenerate and run the scenario belonging to ``seed``.

    ``seed`` is the *strided* per-scenario seed (already
    ``base * SEED_STRIDE + i``), so a worker rebuilds exactly the
    scenario the sequential path would have run — the scenario itself
    never crosses the process boundary, only the integer does.
    """
    scenario = make_scenario(seed, allow_faults=allow_faults)
    return run_scenario(scenario, gap_bound=gap_bound, oracle=oracle)


def run_fuzz(
    count: int,
    seed: int = 0,
    gap_bound: float = DEFAULT_GAP_BOUND,
    oracle: bool = True,
    allow_faults: bool = True,
    jobs: int = 1,
    task_timeout: float | None = None,
) -> FuzzSummary:
    """Run ``count`` seeded scenarios; never raises on scenario failure.

    ``jobs > 1`` fans the scenarios out to that many worker processes
    via :func:`repro.parallel.fleet.run_fleet`; outcomes come back in
    seed order, so the summary is identical to a sequential run no
    matter how the pool interleaves completions.  A worker that dies
    (rather than reports) surfaces as a failing outcome for its
    scenario, never as a lost seed.  ``task_timeout`` arms the fleet's
    hang detection: a scenario whose worker goes silent for that many
    seconds is retried and, if it keeps hanging, reported as a failing
    outcome (``WorkerHung``) instead of stalling the whole sweep.
    """
    if jobs > 1:
        from ..parallel.fleet import TaskSpec, run_fleet

        specs = [
            TaskSpec(
                "fuzz_scenario",
                {
                    "seed": seed * SEED_STRIDE + i,
                    "gap_bound": gap_bound,
                    "oracle": oracle,
                    "allow_faults": allow_faults,
                },
                label=f"fuzz[{i}]",
            )
            for i in range(count)
        ]
        outcomes = []
        for result in run_fleet(specs, jobs=jobs, task_timeout=task_timeout):
            if result.ok:
                outcomes.append(result.value)
            else:
                scenario = make_scenario(
                    seed * SEED_STRIDE + result.index, allow_faults=allow_faults
                )
                outcomes.append(
                    ScenarioOutcome(
                        scenario,
                        None,
                        None,
                        None,
                        (
                            "fleet worker failed: "
                            f"{result.error_type}: {result.error}",
                        ),
                    )
                )
        return FuzzSummary(outcomes=tuple(outcomes))
    outcomes = [
        run_scenario(sc, gap_bound=gap_bound, oracle=oracle)
        for sc in scenarios(count, seed, allow_faults=allow_faults)
    ]
    return FuzzSummary(outcomes=tuple(outcomes))
