"""Benchmark regression harness: a pinned micro-suite with a JSON trail.

Runs a fixed set of small, seed-pinned cases covering each pipeline
stage — stage-1 concurrent throughput, the full LPDAR schedule chain,
RET end-time extension, and the periodic simulator — and records
best-of-``repeats`` wall time plus the headline objective metric of
each case.  :func:`write_bench` serializes the result to
``BENCH_verify.json`` so every future PR inherits a performance and
correctness trajectory: wall times catch slowdowns (loosely — CI
machines vary), objective metrics catch *silent behavioural drift*
(a changed Z*, LPDAR throughput, RET extension, or completion rate on a
pinned seed is a semantic change, not noise, because every case is
fully deterministic).

The cases are deliberately small (seconds, not minutes) so the suite
can run on every CI push inside the ``verify-fuzz`` job's budget.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable
from pathlib import Path

import numpy as np
import scipy

from ..core.ret import solve_ret
from ..core.scheduler import Scheduler
from ..core.throughput import solve_stage1
from ..engine import build_structure
from ..network import topologies
from ..sim.simulator import Simulation
from ..timegrid import TimeGrid
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from ..workload.jobs import JobSet
from .checker import verify_schedule

__all__ = ["BENCH_SCHEMA", "DEFAULT_BENCH_PATH", "run_bench", "write_bench"]

#: Schema version of the JSON document; bump on layout changes.
BENCH_SCHEMA = 1

#: Where :func:`write_bench` writes by default (repo root in CI).
DEFAULT_BENCH_PATH = "BENCH_verify.json"

_SMALL_CONFIG = WorkloadConfig(
    size_low=2.0,
    size_high=30.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


def _case_stage1() -> dict:
    """Stage-1 max concurrent throughput on Abilene, 16 jobs, seed 0."""
    network = topologies.abilene(capacity=1, wavelength_rate=20.0)
    jobs = WorkloadGenerator(network, seed=0).jobs(16)
    grid = TimeGrid.covering(jobs.max_end())
    structure = build_structure(network, jobs, grid, k_paths=2)
    result = solve_stage1(structure)
    return {"zstar": result.zstar, "num_cols": structure.num_cols}


def _case_lpdar() -> dict:
    """Full schedule chain (stage1 -> stage2 LP -> LPDAR) on a ring."""
    network = topologies.ring(8, capacity=2)
    jobs = WorkloadGenerator(network, config=_SMALL_CONFIG, seed=1).jobs(12)
    scheduler = Scheduler(network, k_paths=2)
    result = scheduler.schedule(jobs)
    report = verify_schedule(None, result)
    report.raise_if_failed()
    return {
        "zstar": result.zstar,
        "weighted_throughput": result.weighted_throughput(),
        "alpha": result.alpha,
    }


def _case_ret() -> dict:
    """RET end-time extension on a line topology, 6 jobs, seed 2."""
    network = topologies.line(5, capacity=2)
    jobs = WorkloadGenerator(network, config=_SMALL_CONFIG, seed=2).jobs(6)
    result = solve_ret(network, jobs, k_paths=2)
    return {"b_hat": result.b_hat, "b_final": result.b_final}


def _case_simulate() -> dict:
    """Periodic controller on a ring with staggered arrivals, seed 3."""
    network = topologies.ring(6, capacity=2, wavelength_rate=2.0)
    # Lighter sizes than _SMALL_CONFIG so the pinned completion_rate
    # lands strictly between 0 and 1 — a metric with signal in both
    # directions.
    config = WorkloadConfig(
        size_low=1.0,
        size_high=8.0,
        window_slices_low=2,
        window_slices_high=5,
        start_slack_slices=2,
    )
    generator = WorkloadGenerator(network, config=config, seed=3)
    jobs = [generator.job(i, arrival=float(i % 4)) for i in range(10)]
    sim = Simulation(network, policy="reduce", k_paths=2)
    result = sim.run(JobSet(jobs))
    return {
        "completion_rate": result.completion_rate,
        "delivered_volume": result.delivered_volume,
    }


_CASES: tuple[tuple[str, Callable[[], dict]], ...] = (
    ("stage1_abilene", _case_stage1),
    ("lpdar_ring", _case_lpdar),
    ("ret_line", _case_ret),
    ("simulate_ring", _case_simulate),
)


def run_bench(repeats: int = 3) -> dict:
    """Run the pinned micro-suite and return the benchmark document.

    Each case runs ``repeats`` times; the reported ``seconds`` is the
    minimum (least-noise estimate), ``mean_seconds`` the average.  The
    ``metrics`` of every repeat must be identical — the cases are
    deterministic — and a mismatch raises ``AssertionError`` loudly
    rather than recording garbage.
    """
    from .. import __version__ as repro_version  # local: avoids import cycle

    cases: dict[str, dict] = {}
    for name, fn in _CASES:
        times = []
        metrics: dict | None = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            out = fn()
            times.append(time.perf_counter() - t0)
            out = {k: round(float(v), 9) for k, v in out.items()}
            if metrics is None:
                metrics = out
            else:
                assert out == metrics, (
                    f"benchmark case {name!r} is non-deterministic: "
                    f"{out} != {metrics}"
                )
        cases[name] = {
            "seconds": round(min(times), 4),
            "mean_seconds": round(sum(times) / len(times), 4),
            "metrics": metrics,
        }
    return {
        "schema": BENCH_SCHEMA,
        "suite": "verify-micro",
        "repeats": int(max(1, repeats)),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "repro": repro_version,
        },
        "cases": cases,
    }


def write_bench(path: str | Path = DEFAULT_BENCH_PATH, repeats: int = 3) -> dict:
    """Run :func:`run_bench` and write the document to ``path`` as JSON."""
    document = run_bench(repeats=repeats)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return document
