"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the controller workflow end to end, speaking the
JSON formats of :mod:`repro.serialization`:

* ``topology``  — write a network file (Abilene, synthetic, or Waxman);
* ``workload``  — draw a random paper-style workload over a network;
* ``schedule``  — run the maximizing-throughput algorithm, print the
  outcome (optionally as a Gantt chart), export the grant list;
* ``ret``       — run Algorithm 2 (relax end times until all jobs fit);
* ``simulate``  — replay the workload through the periodic controller;
* ``resume``    — continue a journaled simulation after a crash
  (see docs/recovery.md);
* ``serve``     — run the online reservation service over an arrival
  trace: batched admission, accept/reject/negotiate responses, load
  shedding, journaled decisions, and crash recovery via
  ``serve --resume`` (see docs/service.md);
* ``experiment`` — regenerate a paper figure (fig1..fig4, jobs-finished);
* ``verify``    — check a serialized schedule against its problem's
  invariants, or run the seeded scenario fuzzer / benchmark micro-suite
  (see docs/verify.md);
* ``fleet``     — fan fuzz scenarios or experiment cells out to a pool
  of worker processes (see docs/parallel.md);
* ``chaos``     — run a seeded composed fault timeline against the
  simulator, the service and the fleet with invariant monitors armed
  (see docs/chaos.md);
* ``policy``    — compare epoch-control policies (fixed, bandit,
  load-reactive) over checker-clean fuzz scenarios
  (see docs/architecture.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from . import __version__
from .analysis.gantt import job_gantt, link_gantt
from .analysis.reporting import Table
from .core.ret import solve_ret
from .core.scheduler import Scheduler
from .errors import ReproError
from .obs import Telemetry
from .experiments import EXPERIMENTS, run_experiment
from .network import abilene, full_mesh, line, ring, waxman_network
from .serialization import (
    jobs_from_dict,
    jobs_to_dict,
    load_json,
    network_from_dict,
    network_to_dict,
    save_json,
    schedule_to_dict,
)
from .workload.trace_io import jobs_from_csv, jobs_to_csv
from .sim.metrics import summarize
from .sim.simulator import Simulation
from .workload.generator import WorkloadConfig, WorkloadGenerator

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slotted wavelength scheduling for bulk transfers "
        "(ICPP 2009 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="generate a network JSON file")
    topo.add_argument(
        "kind", choices=["abilene", "line", "ring", "mesh", "waxman"]
    )
    topo.add_argument("--nodes", type=int, default=100,
                      help="node count for synthetic/waxman topologies")
    topo.add_argument("--capacity", type=int, default=1,
                      help="wavelengths per link")
    topo.add_argument("--rate", type=float, default=20.0,
                      help="data rate of one wavelength")
    topo.add_argument("--wavelengths", type=int, default=None,
                      help="split each link's total rate into this many "
                      "wavelengths (paper Figs. 1-2 sweep)")
    topo.add_argument("--seed", type=int, default=0, help="waxman seed")
    topo.add_argument("-o", "--output", required=True)

    work = sub.add_parser("workload", help="generate a random workload")
    work.add_argument("--network", required=True)
    work.add_argument("--jobs", type=int, default=20)
    work.add_argument("--seed", type=int, default=0)
    work.add_argument("--size-low", type=float, default=1.0)
    work.add_argument("--size-high", type=float, default=100.0)
    work.add_argument("--window-low", type=int, default=2,
                      help="min window length in slices")
    work.add_argument("--window-high", type=int, default=8,
                      help="max window length in slices")
    work.add_argument("--slice-length", type=float, default=1.0)
    work.add_argument("--arrival-rate", type=float, default=None,
                      help="Poisson arrivals per time unit (online trace); "
                      "omit for a batch all arriving at t=0")
    work.add_argument("--horizon", type=float, default=12.0,
                      help="arrival horizon when --arrival-rate is set")
    work.add_argument("-o", "--output", required=True)

    sched = sub.add_parser("schedule", help="run stage1 + stage2 + LPDAR")
    sched.add_argument("--network", required=True)
    sched.add_argument("--jobs", required=True)
    sched.add_argument("--k-paths", type=int, default=4)
    sched.add_argument("--alpha", type=float, default=0.1)
    sched.add_argument("--slice-length", type=float, default=1.0)
    sched.add_argument("--gantt", action="store_true",
                       help="print job and link Gantt charts")
    sched.add_argument("--profile", action="store_true",
                       help="print the solve-telemetry tables after the run")
    sched.add_argument("--sharded", action="store_true",
                       help="solve via repro.parallel's decomposed path: "
                       "partition into independent shards, solve each "
                       "through the backend registry, merge the grants "
                       "(see docs/parallel.md)")
    sched.add_argument("--workers", type=int, default=1,
                       help="worker processes for --sharded shard solves "
                       "(1 = sequential in-process)")
    sched.add_argument("-o", "--output", default=None,
                       help="write the grant list as JSON")

    ret = sub.add_parser("ret", help="run Algorithm 2 (relax end times)")
    ret.add_argument("--network", required=True)
    ret.add_argument("--jobs", required=True)
    ret.add_argument("--k-paths", type=int, default=4)
    ret.add_argument("--slice-length", type=float, default=1.0)
    ret.add_argument("--b-max", type=float, default=10.0)
    ret.add_argument("--delta", type=float, default=0.1)
    ret.add_argument("--mode", choices=["end_time", "interval"],
                     default="end_time")
    ret.add_argument("--profile", action="store_true",
                     help="print the solve-telemetry tables (including the "
                     "binary-search trace) after the run")
    ret.add_argument("--no-warm-start", action="store_true",
                     help="disable the model engine's layout/solution reuse "
                     "across binary-search probes (same result, slower; "
                     "see docs/architecture.md)")
    ret.add_argument("-o", "--output", default=None,
                     help="write the extended-schedule grant list as JSON")

    sim = sub.add_parser("simulate", help="run the periodic controller")
    sim.add_argument("--network", required=True)
    sim.add_argument("--jobs", required=True)
    sim.add_argument("--policy", choices=["reject", "reduce", "extend"],
                     default="reduce")
    sim.add_argument("--rejection", choices=["prefix", "greedy"],
                     default="prefix",
                     help="admission algorithm for the reject policy")
    sim.add_argument("--tau", type=float, default=1.0)
    sim.add_argument("--slice-length", type=float, default=1.0)
    sim.add_argument("--k-paths", type=int, default=4)
    sim.add_argument("--horizon", type=float, default=None)
    sim.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject link faults: 'random:mtbf=20,mttr=2', "
                     "inline 'down:a-b@2;up:a-b@5;degrade:c-d@3=1', or a "
                     ".json fault file (see docs/faults.md)")
    sim.add_argument("--fault-seed", type=int, default=0,
                     help="seed for random: fault specs (same seed, same "
                     "fault timeline, same event log)")
    sim.add_argument("--fault-baseline", action="store_true",
                     help="also run the same workload fault-free and report "
                     "the completion/deadline drop the faults caused")
    sim.add_argument("--journal", default=None, metavar="PATH",
                     help="write an epoch journal so a crashed run can be "
                     "continued with 'repro resume' (see docs/recovery.md)")
    sim.add_argument("--solve-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="per-epoch wall-clock budget for the solve chain; "
                     "on exhaustion the scheduler degrades gracefully "
                     "instead of overrunning the epoch")
    sim.add_argument("--profile", action="store_true",
                     help="print the solve-telemetry tables after the run")
    sim.add_argument("--no-warm-start", action="store_true",
                     help="disable the model engine's cross-epoch reuse "
                     "(identical records and events, slower; "
                     "see docs/architecture.md)")
    sim.add_argument("--planner", choices=["monolithic", "sharded"],
                     default="monolithic",
                     help="per-epoch scheduler: 'sharded' partitions each "
                     "epoch's instance into independent shards and merges "
                     "the grants (see docs/parallel.md)")
    sim.add_argument("--control-policy", default=None, metavar="NAME",
                     help="attach an epoch-control policy (fixed, bandit, "
                     "load-reactive) that picks per-epoch knobs — alpha "
                     "start, k_paths, solve-budget split; adaptive "
                     "policies are incompatible with --journal "
                     "(see docs/architecture.md)")
    sim.add_argument("-o", "--output", default=None,
                     help="write the run's records and event log as JSON")

    res = sub.add_parser(
        "resume",
        help="continue a journaled simulation from its last committed epoch",
    )
    res.add_argument("journal", help="epoch journal written by "
                     "'repro simulate --journal'")
    res.add_argument("--profile", action="store_true",
                     help="print the solve-telemetry tables after the run")
    res.add_argument("-o", "--output", default=None,
                     help="write the run's records and event log as JSON")

    srv = sub.add_parser(
        "serve",
        help="run the online reservation service over an arrival trace",
    )
    srv.add_argument("--network", default=None,
                     help="network JSON (required unless --resume)")
    srv.add_argument("--trace", default=None,
                     help="arrival trace: jobs JSON/CSV driven through the "
                     "closed-loop requester population")
    srv.add_argument("--requests", default=None, metavar="PATH",
                     help="raw request records (JSON list) submitted "
                     "verbatim; malformed records get typed rejections "
                     "instead of tracebacks")
    srv.add_argument("--resume", default=None, metavar="JOURNAL",
                     help="recover a crashed service from its decision "
                     "journal, then keep serving (see docs/service.md)")
    srv.add_argument("--tau", type=float, default=1.0)
    srv.add_argument("--slice-length", type=float, default=1.0)
    srv.add_argument("--k-paths", type=int, default=4)
    srv.add_argument("--queue-limit", type=int, default=1024,
                     help="bounded arrival queue; beyond it requests are "
                     "shed with an explicit 'overload' rejection")
    srv.add_argument("--rate", type=float, default=64.0,
                     help="token-bucket admission guard: decisions per "
                     "epoch the service will attempt")
    srv.add_argument("--burst", type=float, default=None,
                     help="token-bucket burst size (default: --rate)")
    srv.add_argument("--journal", default=None, metavar="PATH",
                     help="journal every decision before responding so a "
                     "crashed service can be recovered with --resume")
    srv.add_argument("--solve-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="per-epoch wall-clock budget; missed-deadline "
                     "decisions fall back to certified verdicts")
    srv.add_argument("--crash", default=None, metavar="POINT@EPOCH",
                     help="inject a simulated crash (testing): one of "
                     "pre-batch, post-solve, pre-respond, post-journal "
                     "at the given epoch, e.g. 'pre-respond@2'")
    srv.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject link faults (same spec language as "
                     "'repro simulate --faults')")
    srv.add_argument("--fault-seed", type=int, default=0)
    srv.add_argument("--retry-limit", type=int, default=2,
                     help="closed-loop driver: overload-shed retries per "
                     "request (exponential backoff in epochs)")
    srv.add_argument("--negotiate-limit", type=int, default=2,
                     help="closed-loop driver: negotiated counter-offers "
                     "accepted per request before giving up")
    srv.add_argument("--profile", action="store_true",
                     help="print the solve-telemetry tables after the run")
    srv.add_argument("-o", "--output", default=None,
                     help="write the SLO snapshot + commitment book as JSON")

    ver = sub.add_parser(
        "verify",
        help="check a schedule's invariants, fuzz the pipeline, or "
        "run the benchmark micro-suite",
    )
    ver.add_argument("--network", default=None,
                     help="network JSON (schedule-check mode)")
    ver.add_argument("--jobs", default=None,
                     help="jobs JSON/CSV (schedule-check mode)")
    ver.add_argument("--schedule", default=None,
                     help="serialized schedule JSON to check against the "
                     "problem (from 'repro schedule -o')")
    ver.add_argument("--slice-length", type=float, default=1.0,
                     help="slice length used to rebuild the time grid")
    ver.add_argument("--complete", action="store_true",
                     help="also require every job's full demand delivered "
                     "(RET-style schedules)")
    ver.add_argument("--fuzz", type=int, default=None, metavar="N",
                     help="run N seeded fuzz scenarios instead of checking "
                     "a schedule file")
    ver.add_argument("--seed", type=int, default=0,
                     help="base seed for --fuzz (deterministic)")
    ver.add_argument("--workers", type=int, default=1,
                     help="worker processes for --fuzz scenarios (results "
                     "are identical to a sequential run; see "
                     "docs/parallel.md)")
    ver.add_argument("--gap-bound", type=float, default=None,
                     help="override the documented LPDAR-vs-exact gap bound")
    ver.add_argument("--bench", action="store_true",
                     help="run the pinned benchmark micro-suite and write "
                     "its JSON trail")
    ver.add_argument("--repeats", type=int, default=3,
                     help="benchmark repeats per case (reports the minimum)")
    ver.add_argument("-o", "--output", default=None,
                     help="write the verification report / fuzz summary / "
                     "benchmark document as JSON")

    fleet = sub.add_parser(
        "fleet",
        help="fan seeded fuzz scenarios or experiment cells out to a "
        "pool of worker processes (see docs/parallel.md)",
    )
    fleet.add_argument(
        "what", choices=["fuzz", "experiments"],
        help="what to fan out: seeded fuzz scenarios, or paper-figure / "
        "ablation experiment cells",
    )
    fleet.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: every core the "
                       "process may use; 1 runs inline)")
    fleet.add_argument("--count", type=int, default=25,
                       help="fuzz scenarios to run (fuzz mode)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="base seed for fuzz scenarios (deterministic)")
    fleet.add_argument("--gap-bound", type=float, default=None,
                       help="override the documented LPDAR-vs-exact gap "
                       "bound (fuzz mode)")
    fleet.add_argument("--no-oracle", action="store_true",
                       help="skip the exact-MILP oracle (fuzz mode; faster)")
    fleet.add_argument("--names", default="all",
                       help="comma-separated experiment names, or 'all' "
                       "(experiments mode)")
    fleet.add_argument("--quick", action="store_true",
                       help="scaled-down experiment cells (experiments mode)")
    fleet.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hang detection: kill and rebuild the worker "
                       "pool when no task completes for this long, "
                       "charging the retry budget")
    fleet.add_argument("-o", "--output", default=None,
                       help="write the fleet summary as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded composed fault timeline (crashes, journal "
        "faults, faulty solver backends, worker kills/hangs) against "
        "the simulator, the reservation service and the fleet, with "
        "every invariant monitor armed (see docs/chaos.md)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for both the workload and the "
                       "generated fault timeline (deterministic)")
    chaos.add_argument("--spec", default=None,
                       help="explicit chaos spec (inline entries, "
                       "'random:...', or a .json file) overriding the "
                       "generated timeline; see docs/chaos.md")
    chaos.add_argument("--target", choices=["sim", "serve", "fleet", "all"],
                       default="all",
                       help="which system to drive (default: all three)")
    chaos.add_argument("--workdir", default=None, metavar="DIR",
                       help="keep journals under DIR instead of a "
                       "removed temp dir (for post-mortems)")
    chaos.add_argument("-o", "--output", default=None,
                       help="write the full chaos report as JSON")

    pol = sub.add_parser(
        "policy",
        help="compare epoch-control policies over checker-clean fuzz "
        "scenarios (see docs/architecture.md)",
    )
    pol_sub = pol.add_subparsers(dest="policy_command", required=True)
    pcmp = pol_sub.add_parser(
        "compare",
        help="sweep policies over verify.fuzz scenarios with the "
        "invariant checker armed every epoch",
    )
    pcmp.add_argument("--policies", default="fixed,bandit,load-reactive",
                      help="comma-separated policy names "
                      "(fixed, bandit, load-reactive)")
    pcmp.add_argument("--seeds", type=int, default=3,
                      help="number of fuzz scenarios (seeds 0..N-1)")
    pcmp.add_argument("--k-paths", type=int, default=3)
    pcmp.add_argument("--no-faults", action="store_true",
                      help="restrict to fault-free scenarios")
    pcmp.add_argument("-o", "--output", default=None,
                      help="write the full comparison report as JSON")

    exp = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    exp.add_argument(
        "name", choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    exp.add_argument(
        "--quick", action="store_true",
        help="scaled-down run (seconds) preserving the figure's shape",
    )
    exp.add_argument(
        "--markdown", default=None, metavar="PATH",
        help="also write the results as a markdown report",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_topology(args) -> int:
    if args.kind == "abilene":
        net = abilene(capacity=args.capacity, wavelength_rate=args.rate)
    elif args.kind == "line":
        net = line(args.nodes, args.capacity, args.rate)
    elif args.kind == "ring":
        net = ring(args.nodes, args.capacity, args.rate)
    elif args.kind == "mesh":
        net = full_mesh(args.nodes, args.capacity, args.rate)
    else:
        net = waxman_network(
            args.nodes,
            capacity=args.capacity,
            wavelength_rate=args.rate,
            seed=args.seed,
        )
    if args.wavelengths is not None:
        total = net.wavelength_rate * args.capacity
        net = net.with_wavelengths(args.wavelengths, total)
    save_json(network_to_dict(net), args.output)
    print(
        f"wrote {args.output}: {net.num_nodes} nodes, "
        f"{net.num_link_pairs} link pairs, "
        f"{net.capacities()[0]} wavelengths/link @ {net.wavelength_rate:g}"
    )
    return 0


def _load_jobs(path: str):
    """Job file loader: .csv via trace_io, anything else as JSON.

    CSV identifiers are coerced to integers where purely numeric, since
    the synthetic topologies name their nodes with ints and CSV has no
    type system.
    """
    if str(path).lower().endswith(".csv"):
        return jobs_from_csv(path, coerce_numeric=True)
    return jobs_from_dict(load_json(path))


def _cmd_workload(args) -> int:
    net = network_from_dict(load_json(args.network))
    config = WorkloadConfig(
        size_low=args.size_low,
        size_high=args.size_high,
        window_slices_low=args.window_low,
        window_slices_high=args.window_high,
        slice_length=args.slice_length,
    )
    generator = WorkloadGenerator(net, config, seed=args.seed)
    if args.arrival_rate is not None:
        jobs = generator.arrival_stream(args.arrival_rate, args.horizon)
    else:
        jobs = generator.jobs(args.jobs)
    if str(args.output).lower().endswith(".csv"):
        jobs_to_csv(jobs, args.output)
    else:
        save_json(jobs_to_dict(jobs), args.output)
    print(
        f"wrote {args.output}: {len(jobs)} jobs, "
        f"{jobs.total_size():.1f} total volume"
    )
    return 0


def _profile_telemetry(args) -> Telemetry | None:
    """A live collector when ``--profile`` was given, else None."""
    return Telemetry() if getattr(args, "profile", False) else None


def _print_profile(telemetry: Telemetry | None) -> None:
    if telemetry is not None:
        print()
        print(telemetry.render())


def _cmd_schedule(args) -> int:
    net = network_from_dict(load_json(args.network))
    jobs = _load_jobs(args.jobs)
    telemetry = _profile_telemetry(args)
    if args.sharded:
        from .parallel.sharded import ShardedScheduler

        scheduler = ShardedScheduler(
            net,
            k_paths=args.k_paths,
            alpha=args.alpha,
            slice_length=args.slice_length,
            telemetry=telemetry,
            workers=args.workers,
        )
    else:
        scheduler = Scheduler(
            net,
            k_paths=args.k_paths,
            alpha=args.alpha,
            slice_length=args.slice_length,
            telemetry=telemetry,
        )
    result = scheduler.schedule(jobs)

    table = Table(["metric", "value"], title="schedule summary")
    table.add_row(["jobs", len(jobs)])
    table.add_row(["Z* (stage 1)", round(result.zstar, 4)])
    table.add_row(["overloaded", result.overloaded])
    table.add_row(["alpha used", result.alpha])
    table.add_row(
        ["weighted throughput (LPDAR)", round(result.weighted_throughput(), 4)]
    )
    table.add_row(
        ["LPDAR / LP ratio", round(result.normalized_throughput("lpdar"), 4)]
    )
    table.add_row(["fairness floor met", result.meets_fairness()])
    table.add_row(["jobs fully served", round(result.fraction_finished(), 4)])
    print(table.render())

    if args.gantt:
        print()
        print(job_gantt(result.structure, result.x, max_jobs=20))
        print()
        print(link_gantt(result.structure, result.x, max_links=15))

    _print_profile(telemetry)

    if args.output:
        save_json(schedule_to_dict(result), args.output)
        print(f"\nwrote grant list to {args.output}")
    return 0


def _cmd_ret(args) -> int:
    net = network_from_dict(load_json(args.network))
    jobs = _load_jobs(args.jobs)
    telemetry = _profile_telemetry(args)
    result = solve_ret(
        net,
        jobs,
        slice_length=args.slice_length,
        k_paths=args.k_paths,
        b_max=args.b_max,
        delta=args.delta,
        mode=args.mode,
        telemetry=telemetry,
        warm_start=not args.no_warm_start,
    )
    table = Table(["metric", "value"], title="RET (Algorithm 2) summary")
    table.add_row(["mode", result.mode])
    table.add_row(["b_hat (LP-minimal)", round(result.b_hat, 4)])
    table.add_row(["b_final", round(result.b_final, 4)])
    table.add_row(["delta steps", result.delta_steps])
    table.add_row(["jobs finished (LPDAR)", f"{result.fraction_finished():.0%}"])
    table.add_row(
        ["avg end time LP (slices)", round(result.average_end_time("lp"), 3)]
    )
    table.add_row(
        ["avg end time LPDAR (slices)", round(result.average_end_time("lpdar"), 3)]
    )
    print(table.render())

    _print_profile(telemetry)

    if args.output:
        import numpy as np

        s = result.structure
        x = result.assignments.x_lpdar
        grants = []
        order = np.lexsort((s.col_path, s.col_job, s.col_slice))
        for c in order:
            if x[c] <= 0:
                continue
            i = int(s.col_job[c])
            j = int(s.col_slice[c])
            path = s.paths[i][int(s.col_path[c])]
            grants.append(
                {
                    "job": s.jobs[i].id,
                    "path": list(path.nodes),
                    "slice": j,
                    "wavelengths": int(round(x[c])),
                }
            )
        save_json(
            {
                "mode": result.mode,
                "b_hat": result.b_hat,
                "b_final": result.b_final,
                "extended_ends": {
                    str(job.id): job.end for job in s.jobs
                },
                "grants": grants,
            },
            args.output,
        )
        print(f"\nwrote extended schedule to {args.output}")
    return 0


def _print_simulation_summary(result, title: str) -> None:
    summary = summarize(result)
    table = Table(["metric", "value"], title=title)
    for name in (
        "num_jobs",
        "num_completed",
        "num_rejected",
        "num_expired",
        "acceptance_rate",
        "completion_rate",
        "deadline_rate",
        "delivered_volume",
        "offered_volume",
        "mean_response_time",
        "mean_lateness",
        "num_deadline_extensions",
        "num_scheduling_passes",
        "mean_solve_seconds",
        "mean_zstar",
    ):
        value = getattr(summary, name)
        table.add_row([name, round(value, 4) if isinstance(value, float) else value])
    print(table.render())


def _cmd_simulate(args) -> int:
    net = network_from_dict(load_json(args.network))
    jobs = _load_jobs(args.jobs)
    telemetry = _profile_telemetry(args)
    fault_schedule = None
    if args.faults:
        from .faults import parse_fault_spec

        # random: specs need the fault horizon; mirror Simulation.run's
        # default (latest deadline plus full RET headroom).
        fault_horizon = args.horizon
        if fault_horizon is None:
            fault_horizon = 11.0 * jobs.max_end()
        fault_schedule = parse_fault_spec(
            args.faults, net, seed=args.fault_seed, horizon=fault_horizon
        )
    solve_budget = None
    if args.solve_budget is not None:
        from .lp.solver import SolveBudget

        solve_budget = SolveBudget(args.solve_budget)
    control_policy = None
    if args.control_policy is not None:
        from .control import make_policy

        control_policy = make_policy(args.control_policy,
                                     seed=args.fault_seed)
    sim = Simulation(
        net,
        tau=args.tau,
        slice_length=args.slice_length,
        policy=args.policy,
        k_paths=args.k_paths,
        rejection=args.rejection,
        telemetry=telemetry,
        fault_schedule=fault_schedule,
        journal=args.journal,
        solve_budget=solve_budget,
        warm_start=not args.no_warm_start,
        planner=args.planner,
        control_policy=control_policy,
    )
    result = sim.run(jobs, horizon=args.horizon)
    _print_simulation_summary(result, f"simulation ({args.policy} policy)")

    if fault_schedule is not None:
        from .analysis import resilience_report

        baseline = None
        if args.fault_baseline:
            baseline = Simulation(
                net,
                tau=args.tau,
                slice_length=args.slice_length,
                policy=args.policy,
                k_paths=args.k_paths,
                rejection=args.rejection,
                warm_start=not args.no_warm_start,
            ).run(jobs, horizon=args.horizon)
        print()
        print(resilience_report(result, baseline).table().render())

    _print_profile(telemetry)

    if args.output:
        from .serialization import simulation_to_dict

        save_json(simulation_to_dict(result), args.output)
        print(f"\nwrote run log to {args.output}")
    return 0


def _cmd_resume(args) -> int:
    telemetry = _profile_telemetry(args)
    result = Simulation.resume(args.journal, telemetry=telemetry)
    _print_simulation_summary(result, f"resumed simulation ({args.journal})")

    _print_profile(telemetry)

    if args.output:
        from .serialization import simulation_to_dict

        save_json(simulation_to_dict(result), args.output)
        print(f"\nwrote run log to {args.output}")
    return 0


def _parse_crash_spec(spec: str):
    """``POINT@EPOCH`` → a one-shot :class:`CrashInjector`."""
    from .errors import ValidationError
    from .recovery import CrashInjector

    point, sep, epoch = spec.partition("@")
    if not sep:
        raise ValidationError(
            f"crash spec {spec!r} must look like 'pre-respond@2'"
        )
    try:
        at = int(epoch)
    except ValueError:
        raise ValidationError(
            f"crash spec {spec!r}: epoch {epoch!r} is not an integer"
        ) from None
    return CrashInjector(point, at)


def _cmd_serve(args) -> int:
    import asyncio

    from .recovery import SimulatedCrash, SolveBudget
    from .service import ClosedLoopDriver, ReservationService

    telemetry = _profile_telemetry(args)
    crash = _parse_crash_spec(args.crash) if args.crash else None
    solve_budget = (
        SolveBudget(args.solve_budget)
        if args.solve_budget is not None else None
    )

    if args.resume:
        service = ReservationService.resume(
            args.resume,
            telemetry=telemetry,
            crash_injector=crash,
            solve_budget=solve_budget,
        )
        print(
            f"recovered service from {args.resume}: epoch {service.epoch}, "
            f"{service.book.num_accepted} reservations committed"
        )
    else:
        if not args.network:
            print("error: serve needs --network (or --resume)",
                  file=sys.stderr)
            return 2
        net = network_from_dict(load_json(args.network))
        fault_schedule = None
        if args.faults:
            from .faults import parse_fault_spec

            horizon = 100.0 * args.tau
            if args.trace:
                horizon = max(horizon, 11.0 * _load_jobs(args.trace).max_end())
            fault_schedule = parse_fault_spec(
                args.faults, net, seed=args.fault_seed, horizon=horizon
            )
        service = ReservationService(
            net,
            tau=args.tau,
            slice_length=args.slice_length,
            k_paths=args.k_paths,
            queue_limit=args.queue_limit,
            rate=args.rate,
            burst=args.burst,
            journal=args.journal,
            solve_budget=solve_budget,
            crash_injector=crash,
            fault_schedule=fault_schedule,
            telemetry=telemetry,
        )

    try:
        if args.requests:
            records = load_json(args.requests)
            if not isinstance(records, list):
                records = [records]
            handles = [service.submit(record) for record in records]
            while not service.idle or service.queue_depth:
                asyncio.run(service.tick())
            for handle in handles:
                decision = handle.decision
                detail = getattr(decision, "reason", "") or (
                    f"[{getattr(decision, 'start', '')}, "
                    f"{getattr(decision, 'end', '')}]"
                )
                print(f"{decision.request_id}: {decision.kind} {detail}")
        if args.trace:
            jobs = _load_jobs(args.trace)
            driver = ClosedLoopDriver(
                service,
                jobs,
                retry_limit=args.retry_limit,
                negotiate_limit=args.negotiate_limit,
            )
            report = asyncio.run(driver.run())
            print(
                f"drove {len(jobs)} requests: {report.accepted} accepted, "
                f"{report.rejected} rejected, "
                f"{report.renegotiated} renegotiated, "
                f"{report.shed_retries} shed retries"
            )
        elif not args.requests:
            # No arrival source: drain whatever the journal carried over.
            while not service.idle:
                asyncio.run(service.tick())
    except SimulatedCrash as exc:
        service.close()
        print(f"simulated crash: {exc}", file=sys.stderr)
        if args.journal or args.resume:
            journal = args.journal or args.resume
            print(f"recover with: repro serve --resume {journal}",
                  file=sys.stderr)
        return 3

    print()
    print(service.stats.table().render())
    book = service.book
    print(
        f"\ncommitment book: {len(book.ledger)} decisions, "
        f"{book.num_accepted} reservations, {book.num_lost} lost, "
        f"digest {book.digest()[:16]}"
    )
    _print_profile(telemetry)

    if args.output:
        save_json(
            {"slo": service.stats.snapshot(), "book": book.to_dict(),
             "digest": book.digest()},
            args.output,
        )
        print(f"\nwrote service report to {args.output}")
    service.close()
    return 0


def _cmd_verify(args) -> int:
    from .verify.bench import DEFAULT_BENCH_PATH, write_bench
    from .verify.fuzz import run_fuzz
    from .verify.oracles import DEFAULT_GAP_BOUND

    if args.bench:
        path = args.output or DEFAULT_BENCH_PATH
        document = write_bench(path, repeats=args.repeats)
        table = Table(
            ["case", "seconds", "metrics"], title="benchmark micro-suite"
        )
        for name, case in document["cases"].items():
            metrics = ", ".join(
                f"{k}={v:g}" for k, v in case["metrics"].items()
            )
            table.add_row([name, case["seconds"], metrics])
        print(table.render())
        print(f"\nwrote benchmark trail to {path}")
        return 0

    if args.fuzz is not None:
        bound = args.gap_bound if args.gap_bound is not None else DEFAULT_GAP_BOUND
        summary = run_fuzz(
            args.fuzz, seed=args.seed, gap_bound=bound, jobs=args.workers
        )
        print(summary.render())
        if args.output:
            save_json(
                {
                    "seed": args.seed,
                    "count": args.fuzz,
                    "gap_bound": bound,
                    "ok": summary.ok,
                    "max_gap": summary.max_gap,
                    "failing_seeds": list(summary.failing_seeds),
                },
                args.output,
            )
            print(f"wrote fuzz summary to {args.output}")
        return 0 if summary.ok else 1

    if not (args.network and args.jobs and args.schedule):
        print(
            "error: verify needs --network, --jobs and --schedule "
            "(or one of --fuzz / --bench)",
            file=sys.stderr,
        )
        return 2

    from .serialization import report_to_dict
    from .timegrid import TimeGrid
    from .verify.checker import verify_schedule

    net = network_from_dict(load_json(args.network))
    jobs = _load_jobs(args.jobs)
    schedule = load_json(args.schedule)
    grid = TimeGrid.covering(jobs.max_end(), args.slice_length)
    report = verify_schedule(
        net,
        schedule,
        jobs=jobs,
        grid=grid,
        require_complete=args.complete or None,
    )
    print(report.render())
    if not report.ok:
        print()
        print(report.explain())
    if args.output:
        save_json(report_to_dict(report), args.output)
        print(f"\nwrote report to {args.output}")
    return 0 if report.ok else 1


def _cmd_fleet(args) -> int:
    from .parallel.fleet import TaskSpec, default_jobs, run_fleet

    jobs = args.jobs if args.jobs is not None else default_jobs()

    if args.what == "fuzz":
        from .verify.fuzz import run_fuzz
        from .verify.oracles import DEFAULT_GAP_BOUND

        bound = (
            args.gap_bound if args.gap_bound is not None else DEFAULT_GAP_BOUND
        )
        summary = run_fuzz(
            args.count,
            seed=args.seed,
            gap_bound=bound,
            oracle=not args.no_oracle,
            jobs=jobs,
            task_timeout=args.task_timeout,
        )
        print(summary.render())
        print(f"({jobs} worker{'s' if jobs != 1 else ''})")
        if args.output:
            save_json(
                {
                    "seed": args.seed,
                    "count": args.count,
                    "jobs": jobs,
                    "gap_bound": bound,
                    "ok": summary.ok,
                    "max_gap": summary.max_gap,
                    "failing_seeds": list(summary.failing_seeds),
                },
                args.output,
            )
            print(f"wrote fleet fuzz summary to {args.output}")
        return 0 if summary.ok else 1

    # experiments mode: one cell per named experiment / ablation.
    names = (
        sorted(EXPERIMENTS)
        if args.names == "all"
        else [n.strip() for n in args.names.split(",") if n.strip()]
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; "
            f"available: {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    specs = [
        TaskSpec("experiment", {"name": name, "quick": args.quick}, label=name)
        for name in names
    ]
    results = run_fleet(specs, jobs=jobs, task_timeout=args.task_timeout)
    failed = []
    rows = []
    for res in results:
        if res.ok:
            print(res.value.table().render())
            print(f"({res.value.seconds:.1f}s)\n")
            rows.append(
                {
                    "experiment": res.value.experiment_id,
                    "seconds": res.value.seconds,
                    "ok": True,
                }
            )
        else:
            failed.append(res.label)
            print(f"[FAIL] {res.label}: {res.error_type}: {res.error}\n")
            rows.append({"experiment": res.label, "ok": False,
                         "error": res.error})
    print(
        f"{len(results)} experiment cells, {len(failed)} failed "
        f"({jobs} worker{'s' if jobs != 1 else ''})"
    )
    if args.output:
        save_json({"jobs": jobs, "cells": rows}, args.output)
        print(f"wrote fleet experiment summary to {args.output}")
    return 0 if not failed else 1


def _cmd_chaos(args) -> int:
    from .chaos import run_chaos

    targets = (
        ("sim", "serve", "fleet") if args.target == "all"
        else (args.target,)
    )
    report = run_chaos(
        seed=args.seed,
        spec=args.spec,
        targets=targets,
        workdir=args.workdir,
    )
    print(report.render())
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report.to_json() + "\n")
        print(f"wrote chaos report to {args.output}")
    return 0 if report.ok else 1


def _cmd_policy(args) -> int:
    from .control import POLICY_NAMES, compare_policies
    from .errors import ValidationError

    # Only 'compare' exists today; argparse enforces the subcommand.
    names = tuple(
        name.strip() for name in args.policies.split(",") if name.strip()
    )
    for name in names:
        if name not in POLICY_NAMES:
            raise ValidationError(
                f"unknown policy {name!r}; known policies: "
                f"{', '.join(POLICY_NAMES)}"
            )
    comparison = compare_policies(
        names,
        seeds=args.seeds,
        k_paths=args.k_paths,
        allow_faults=not args.no_faults,
    )
    print(comparison.render())
    total = sum(r.epochs_verified for r in comparison.runs)
    print(f"\n{len(comparison.runs)} runs, {total} epochs checker-verified")
    if args.output:
        save_json(comparison.to_dict(), args.output)
        print(f"wrote comparison report to {args.output}")
    return 0


def _cmd_experiment(args) -> int:
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    results = []
    for name in names:
        result = run_experiment(name, quick=args.quick)
        results.append(result)
        print(result.table().render())
        print(f"({result.seconds:.1f}s)\n")
    if args.markdown:
        from .experiments.report import render_report

        from pathlib import Path

        Path(args.markdown).write_text(
            render_report(results, quick=args.quick) + "\n"
        )
        print(f"wrote markdown report to {args.markdown}")
    return 0


_COMMANDS = {
    "topology": _cmd_topology,
    "workload": _cmd_workload,
    "schedule": _cmd_schedule,
    "ret": _cmd_ret,
    "simulate": _cmd_simulate,
    "resume": _cmd_resume,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
    "verify": _cmd_verify,
    "fleet": _cmd_fleet,
    "chaos": _cmd_chaos,
    "policy": _cmd_policy,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro ... | head`); die
        # quietly like a well-behaved filter.  Point stdout at devnull
        # so the interpreter's shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
