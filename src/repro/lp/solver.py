"""Thin, typed wrappers around SciPy's HiGHS LP solver.

The paper used CPLEX; we substitute the HiGHS simplex/IPM bundled with
SciPy (see DESIGN.md).  Everything downstream talks to these wrappers,
so swapping the backend means editing this module only.

Resilient solve chain
---------------------

Long online-controller runs cannot afford to die on one transient
numerical failure.  Passing a :class:`SolveResilience` to
:func:`solve_lp` turns the single-shot solve into a bounded chain:

1. solve on the requested backend;
2. on a non-modelling :class:`~repro.errors.SolverError`, retry up to
   ``max_retries`` times, each time nudging the right-hand side by a
   relative ``perturbation`` (a standard numerical-rescue trick —
   relaxing every row by ``~1e-9`` moves the optimum by noise but often
   shakes the factorization out of a degenerate corner);
3. if the primary backend never succeeds and the instance is small
   enough (``fallback_max_vars``), fall back to ``fallback_backend``
   (by default the pure-Python reference simplex);
4. if everything fails, raise a :class:`~repro.errors.SolverError`
   carrying the full chain context: final backend, status, retry count
   and every backend tried.

Modelling outcomes (:class:`~repro.errors.InfeasibleProblemError`,
:class:`~repro.errors.UnboundedProblemError`) are never retried — they
are answers, not failures.  ``resilience=None`` (the default) keeps the
exact single-shot behaviour.

Deadline-aware solving
----------------------

An online controller must commit *something* before its epoch boundary,
so every solve entry point also accepts a :class:`SolveBudget` — a
cooperative wall-clock watchdog.  The budget is checked before each
backend attempt (and forwarded to HiGHS as its native ``time_limit``),
and exhaustion raises :class:`~repro.errors.BudgetExceededError`, which
the resilience chain never retries (wall time spent on one backend is
gone for all of them).  The graceful-degradation ladder that turns a
budget overrun into a cheaper-but-feasible schedule lives one layer up,
in :class:`~repro.core.scheduler.Scheduler`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..errors import (
    BudgetExceededError,
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = [
    "LinearProgram",
    "LPSolution",
    "SolveResilience",
    "SolveBudget",
    "DEFAULT_RESILIENCE",
    "solve_lp",
]


@dataclass
class LinearProgram:
    """A linear program in the standard SciPy form.

    ``maximize`` selects the sense of ``objective``; internally the
    problem is always handed to HiGHS as a minimization.

    Attributes
    ----------
    objective:
        Coefficient vector ``c``.
    a_ub, b_ub:
        Inequality block ``A_ub @ x <= b_ub`` (optional).
    a_eq, b_eq:
        Equality block ``A_eq @ x == b_eq`` (optional).
    lower, upper:
        Variable bounds; scalars broadcast.  Defaults: ``0 <= x``.
    maximize:
        Sense of the objective.
    """

    objective: np.ndarray
    a_ub: sp.spmatrix | None = None
    b_ub: np.ndarray | None = None
    a_eq: sp.spmatrix | None = None
    b_eq: np.ndarray | None = None
    lower: float | np.ndarray = 0.0
    upper: float | np.ndarray = np.inf
    maximize: bool = False

    def __post_init__(self) -> None:
        self.objective = np.asarray(self.objective, dtype=float)
        if self.objective.ndim != 1:
            raise ValidationError("objective must be a 1-D coefficient vector")
        if not np.all(np.isfinite(self.objective)):
            raise ValidationError(
                "objective coefficients must be finite (a corrupt problem "
                "would silently poison the solve)"
            )
        n = self.num_vars
        self.b_ub = self._check_block("a_ub", self.a_ub, self.b_ub, n)
        self.b_eq = self._check_block("a_eq", self.a_eq, self.b_eq, n)
        self._check_bounds()

    def _check_bounds(self) -> None:
        """Reject bound values no LP can mean: NaN, and inverted infinities.

        ``lower = -inf`` and ``upper = +inf`` are legitimate (free /
        one-sided variables); ``NaN`` anywhere, ``lower = +inf`` or
        ``upper = -inf`` can only come from corrupted data — comparisons
        against NaN are all false, so without this check such values
        sail through ``bounds_arrays`` and poison the backend.
        """
        lo = np.asarray(self.lower, dtype=float)
        hi = np.asarray(self.upper, dtype=float)
        if np.any(np.isnan(lo)) or np.any(np.isnan(hi)):
            raise ValidationError("variable bounds must not contain NaN")
        if np.any(lo == np.inf):
            raise ValidationError("a lower bound is +inf (no feasible value)")
        if np.any(hi == -np.inf):
            raise ValidationError("an upper bound is -inf (no feasible value)")

    @staticmethod
    def _check_block(name, mat, rhs, n) -> np.ndarray | None:
        """Validate one constraint block; return the coerced 1-D rhs."""
        if (mat is None) != (rhs is None):
            raise ValidationError(f"{name} and its rhs must come together")
        if mat is None:
            return None
        # Scalars (e.g. a single-row block with rhs 5.0) are legal input;
        # atleast_1d keeps shape[0] valid instead of an IndexError.
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if rhs.ndim != 1:
            raise ValidationError(
                f"{name}'s rhs must be a scalar or 1-D vector, "
                f"got shape {rhs.shape}"
            )
        if not np.all(np.isfinite(rhs)):
            raise ValidationError(
                f"{name}'s rhs must be finite; non-finite right-hand sides "
                "(e.g. from a corrupt checkpoint) are rejected"
            )
        if mat.shape[1] != n:
            raise ValidationError(
                f"{name} has {mat.shape[1]} columns, expected {n}"
            )
        if mat.shape[0] != rhs.shape[0]:
            raise ValidationError(
                f"{name} has {mat.shape[0]} rows but rhs has {rhs.shape[0]}"
            )
        return rhs

    @property
    def num_vars(self) -> int:
        return self.objective.shape[0]

    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds broadcast to full vectors."""
        lo = np.broadcast_to(np.asarray(self.lower, float), (self.num_vars,))
        hi = np.broadcast_to(np.asarray(self.upper, float), (self.num_vars,))
        if np.any(lo > hi):
            raise ValidationError("a lower bound exceeds its upper bound")
        return lo.copy(), hi.copy()


@dataclass(frozen=True)
class LPSolution:
    """A solved LP.

    Attributes
    ----------
    x:
        Optimal variable values.
    objective:
        Optimal objective value *in the problem's stated sense* (i.e.
        already negated back for maximization problems).
    iterations:
        Simplex/IPM iteration count reported by the backend.
    ineq_duals, eq_duals:
        Dual values (shadow prices) of the inequality and equality
        blocks, sign-adjusted so that a positive inequality dual means
        "one more unit of right-hand side improves the stated objective
        by this much."  ``None`` when the backend reported no duals
        (e.g. MILP solves).
    basis:
        Opaque basis description from basis-reporting backends, carried
        into the next :class:`~repro.engine.backend.WarmStart` of the
        same LP family.  ``None`` for the bundled backends (SciPy's
        HiGHS binding exposes no basis; the reference simplex reports
        none).
    """

    x: np.ndarray
    objective: float
    iterations: int = 0
    ineq_duals: np.ndarray | None = None
    eq_duals: np.ndarray | None = None
    basis: tuple | None = None


@dataclass(frozen=True)
class SolveResilience:
    """Policy knobs of the resilient solve chain (see module docstring).

    Attributes
    ----------
    max_retries:
        Extra attempts on the primary backend after the first failure.
    perturbation:
        Relative right-hand-side relaxation applied per retry: attempt
        ``k`` solves with ``b * (1 + k * perturbation)``.  Small enough
        to be numerical noise, large enough to escape degenerate bases.
    fallback_backend:
        Backend tried when the primary one is exhausted (``None``
        disables the fallback stage).
    fallback_max_vars:
        The fallback only engages for instances with at most this many
        variables — the reference simplex is exact but dense and slow.
    """

    max_retries: int = 2
    perturbation: float = 1e-9
    fallback_backend: str | None = "simplex"
    fallback_max_vars: int = 800

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0.0 <= self.perturbation < 1e-3:
            raise ValidationError(
                "perturbation must be a tiny non-negative relative factor, "
                f"got {self.perturbation}"
            )
        if self.fallback_max_vars < 0:
            raise ValidationError(
                f"fallback_max_vars must be >= 0, got {self.fallback_max_vars}"
            )


#: The chain configuration used when callers just say "be resilient".
DEFAULT_RESILIENCE = SolveResilience()


class SolveBudget:
    """A cooperative wall-clock allowance for one solve pass.

    The budget is a countdown clock shared by every stage of a solve
    pass (stage 1, the stage-2/alpha-escalation loop, RET probes): the
    first consumer starts it, and each subsequent :meth:`check` raises
    :class:`~repro.errors.BudgetExceededError` once ``wall_time_s`` has
    elapsed.  The HiGHS backend additionally receives the remaining
    time as its native ``time_limit`` so a single long LP solve cannot
    blow through the deadline between two cooperative checks.

    The clock is deliberately explicit: the online controller calls
    :meth:`restart` at each epoch boundary so one budget object covers
    the whole run, while standalone callers can hand a fresh budget to
    :meth:`~repro.core.scheduler.Scheduler.schedule` or
    :func:`~repro.core.ret.solve_ret` and let the callee start it.

    Parameters
    ----------
    wall_time_s:
        Total wall-clock allowance, in seconds, per :meth:`restart`.
    min_backend_time_s:
        Floor on the ``time_limit`` handed to the backend, so a nearly
        exhausted budget never passes a zero or negative limit.
    """

    def __init__(
        self, wall_time_s: float, min_backend_time_s: float = 1e-3
    ) -> None:
        if not wall_time_s > 0:
            raise ValidationError(
                f"wall_time_s must be positive, got {wall_time_s}"
            )
        if not min_backend_time_s > 0:
            raise ValidationError(
                f"min_backend_time_s must be positive, got {min_backend_time_s}"
            )
        self.wall_time_s = float(wall_time_s)
        self.min_backend_time_s = float(min_backend_time_s)
        self._deadline: float | None = None

    @property
    def started(self) -> bool:
        """Whether the countdown is running."""
        return self._deadline is not None

    def restart(self) -> "SolveBudget":
        """(Re)start the countdown: full ``wall_time_s`` from now."""
        self._deadline = time.perf_counter() + self.wall_time_s
        return self

    def ensure_started(self) -> "SolveBudget":
        """Start the countdown only if it is not already running."""
        if self._deadline is None:
            self.restart()
        return self

    def remaining(self) -> float:
        """Seconds left (may be negative once overrun; full if unstarted)."""
        if self._deadline is None:
            return self.wall_time_s
        return self._deadline - time.perf_counter()

    def expired(self) -> bool:
        """Whether a started countdown has run out."""
        return self._deadline is not None and self.remaining() <= 0.0

    def check(self, where: str = "solve") -> None:
        """Cooperative watchdog point; raises once the budget is spent."""
        self.ensure_started()
        if self.expired():
            raise BudgetExceededError(
                f"solve budget of {self.wall_time_s:g}s exhausted at "
                f"{where!r}",
                where=where,
                wall_time_s=self.wall_time_s,
            )

    def backend_time_limit(self) -> float:
        """The ``time_limit`` to hand the backend (never non-positive)."""
        return max(self.remaining(), self.min_backend_time_s)

    def __repr__(self) -> str:
        state = f"remaining={self.remaining():.3f}s" if self.started else "idle"
        return f"SolveBudget(wall_time_s={self.wall_time_s:g}, {state})"


def _matrix_nnz(matrix) -> int:
    """Stored-entry count of an optional (sparse or dense) matrix."""
    if matrix is None:
        return 0
    if sp.issparse(matrix):
        return int(matrix.nnz)
    return int(np.count_nonzero(matrix))


def _record_solve(
    telemetry: Telemetry,
    problem: LinearProgram,
    solution: LPSolution,
    backend: str,
    seconds: float,
    label: str | None,
) -> None:
    """Append one ``lp_solve`` record describing a finished solve."""
    num_ub = problem.a_ub.shape[0] if problem.a_ub is not None else 0
    num_eq = problem.a_eq.shape[0] if problem.a_eq is not None else 0
    telemetry.record(
        "lp_solve",
        label=label,
        backend=backend,
        num_vars=problem.num_vars,
        num_rows=num_ub + num_eq,
        num_ub_rows=num_ub,
        num_eq_rows=num_eq,
        nnz=_matrix_nnz(problem.a_ub) + _matrix_nnz(problem.a_eq),
        iterations=solution.iterations,
        status="optimal",
        maximize=problem.maximize,
        objective=solution.objective,
        seconds=seconds,
    )
    telemetry.count("lp_solves")
    telemetry.count("lp_iterations", solution.iterations)


def _check_solution(
    problem: LinearProgram,
    solution: LPSolution,
    backend: str,
    tol: float = 1e-6,
) -> None:
    """Reject a backend solution that violates its own LP.

    Backends are pluggable (:func:`repro.engine.backend.register_backend`)
    and therefore untrusted; a buggy — or chaos-wrapped — backend can
    return a point that satisfies nothing it was asked to.  The check is
    purely syntactic against the LP handed to the backend: finite values
    of the right shape, inside the bounds box, and within tolerance of
    every constraint row.  Violations raise :class:`SolverError`, which
    the resilient solve chain treats like any other backend failure —
    retry, then fall back to the reference simplex.
    """
    x = np.asarray(solution.x, dtype=float)
    if x.shape != (problem.num_vars,):
        raise SolverError(
            f"backend {backend!r} returned a solution of shape {x.shape}; "
            f"expected ({problem.num_vars},)",
            backend=backend,
        )
    if not np.all(np.isfinite(x)):
        raise SolverError(
            f"backend {backend!r} returned non-finite solution values",
            backend=backend,
        )
    lo, hi = problem.bounds_arrays()
    slack = tol * np.maximum(np.abs(x), 1.0)
    if np.any(x < lo - slack) or np.any(x > hi + slack):
        raise SolverError(
            f"backend {backend!r} returned an out-of-bounds solution",
            backend=backend,
        )
    if problem.a_ub is not None:
        resid = problem.a_ub @ x - problem.b_ub
        bound = tol * np.maximum(np.abs(problem.b_ub), 1.0)
        if np.any(resid > bound):
            raise SolverError(
                f"backend {backend!r} returned an infeasible point: "
                f"inequality residual {float(np.max(resid - bound)):g} "
                "above tolerance",
                backend=backend,
            )
    if problem.a_eq is not None:
        resid = np.abs(problem.a_eq @ x - problem.b_eq)
        bound = tol * np.maximum(np.abs(problem.b_eq), 1.0)
        if np.any(resid > bound):
            raise SolverError(
                f"backend {backend!r} returned a point violating an "
                "equality row",
                backend=backend,
            )


def _perturbed(problem: LinearProgram, relax: float) -> LinearProgram:
    """Copy of ``problem`` with every inequality rhs relaxed by ``relax``.

    Only the ``<=`` block is touched: relaxing it keeps every feasible
    point feasible, so the retry can never turn a solvable instance
    infeasible.  Equality rows and bounds are left exact.
    """
    if problem.b_ub is None or relax <= 0.0:
        return problem
    b_ub = problem.b_ub + relax * np.maximum(np.abs(problem.b_ub), 1.0)
    return LinearProgram(
        objective=problem.objective,
        a_ub=problem.a_ub,
        b_ub=b_ub,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lower=problem.lower,
        upper=problem.upper,
        maximize=problem.maximize,
    )


def solve_lp(
    problem: LinearProgram,
    backend: str = "highs",
    telemetry: Telemetry | None = None,
    label: str | None = None,
    resilience: SolveResilience | None = None,
    budget: SolveBudget | None = None,
    warm_start=None,
    validate: bool = False,
) -> LPSolution:
    """Solve ``problem``; raise typed errors on failure.

    Parameters
    ----------
    problem:
        The LP to solve.
    backend:
        Name of a backend registered with
        :func:`repro.engine.backend.register_backend`.  Bundled:
        ``"highs"`` (default, SciPy's HiGHS — use this at scale) and
        ``"simplex"`` (the pure-Python reference solver in
        :mod:`repro.lp.simplex`, for small instances and auditing; it
        does not report duals).  Unknown names raise
        :class:`~repro.errors.ValidationError`.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` collector; when given,
        the solve is timed under an ``"lp_solve"`` span and an
        ``lp_solve`` record captures dimensions, nnz, iteration count,
        backend and status.  ``None`` (the default) measures nothing.
    label:
        Free-form tag stored on the telemetry record (e.g. ``"stage2"``)
        so multi-solve pipelines stay tellable apart.
    resilience:
        Optional :class:`SolveResilience` enabling the bounded
        retry-perturb-fallback chain described in the module docstring.
        ``None`` (the default) solves exactly once.
    budget:
        Optional :class:`SolveBudget` watchdog.  Checked before every
        attempt, and forwarded to the HiGHS backend as its native
        ``time_limit``.  A :class:`~repro.errors.BudgetExceededError` is
        never retried by the resilience chain — running out of wall
        time is a policy decision for the caller's degradation ladder,
        not a solver failure.
    validate:
        Treat the backend as untrusted: check the returned point against
        the LP's own bounds and constraint rows (see
        :func:`_check_solution`) and raise :class:`SolverError` on a
        violation.  Composes with ``resilience`` — a wrong solution is
        retried and ultimately repaired by the fallback backend, which
        is how the chaos engine's ``FaultyBackend`` wrong-solution mode
        is survived at the solve layer.

    Raises
    ------
    InfeasibleProblemError
        No feasible point exists.
    UnboundedProblemError
        The objective is unbounded in the requested sense.
    BudgetExceededError
        ``budget`` ran out before an attempt started or during a
        backend solve.
    SolverError
        Any other backend failure (numerical issues, limits).  With a
        resilience policy, raised only after the whole chain is
        exhausted, and carries ``backend``, ``retries`` and
        ``backends_tried`` context.
    """
    telemetry = telemetry or NULL_TELEMETRY
    # Lazy import: repro.engine.backend imports this module for the
    # bundled backend implementations, so the registry lookup must not
    # run at import time.
    from ..engine.backend import get_backend

    backend_obj = get_backend(backend)
    if budget is not None:
        budget.check(label or "lp_solve")
    if resilience is None:
        solution = backend_obj.solve(
            problem,
            warm_start=warm_start,
            telemetry=telemetry,
            label=label,
            budget=budget,
        )
        if validate:
            _check_solution(problem, solution, backend)
        return solution

    tried: list[str] = []
    retries = 0
    last_error: SolverError | None = None
    for attempt in range(resilience.max_retries + 1):
        if budget is not None:
            budget.check(label or "lp_solve")
        candidate = (
            problem
            if attempt == 0
            else _perturbed(problem, attempt * resilience.perturbation)
        )
        tried.append(backend)
        try:
            solution = backend_obj.solve(
                candidate,
                warm_start=warm_start,
                telemetry=telemetry,
                label=label,
                budget=budget,
            )
            if validate:
                _check_solution(candidate, solution, backend)
            return solution
        except (InfeasibleProblemError, UnboundedProblemError):
            raise  # modelling outcomes, not failures: never retried
        except SolverError as exc:
            last_error = exc
            retries = attempt
            telemetry.record(
                "solve_retry",
                label=label,
                backend=backend,
                attempt=attempt,
                status=exc.status,
                message=str(exc),
            )
            telemetry.count("lp_retries")

    fallback = resilience.fallback_backend
    if (
        fallback is not None
        and fallback != backend
        and problem.num_vars <= resilience.fallback_max_vars
    ):
        tried.append(fallback)
        telemetry.count("lp_backend_fallbacks")
        if budget is not None:
            budget.check(label or "lp_solve")
        try:
            solution = get_backend(fallback).solve(
                problem,
                warm_start=warm_start,
                telemetry=telemetry,
                label=label,
                budget=budget,
            )
            if validate:
                _check_solution(problem, solution, fallback)
            return solution
        except (InfeasibleProblemError, UnboundedProblemError):
            raise
        except SolverError as exc:
            last_error = exc

    assert last_error is not None
    raise SolverError(
        f"resilient solve chain exhausted after {len(tried)} attempts "
        f"({' -> '.join(tried)}): {last_error}",
        status=last_error.status,
        backend=tried[-1],
        retries=retries,
        backends_tried=tuple(tried),
    )


def _solve_once(
    problem: LinearProgram,
    backend: str,
    telemetry: Telemetry,
    label: str | None,
    budget: SolveBudget | None = None,
) -> LPSolution:
    """One backend attempt; the pre-resilience ``solve_lp`` body."""
    if backend == "simplex":
        from .simplex import simplex_solve

        # The pure-Python simplex has no native time limit; an overrun
        # here is caught by the next cooperative check rather than
        # discarding the (valid) solution it just produced.
        with telemetry.span("lp_solve") as span:
            solution = simplex_solve(problem)
        _record_solve(telemetry, problem, solution, backend, span.elapsed, label)
        return solution
    if backend != "highs":
        raise ValidationError(
            f"unknown backend {backend!r}; pick 'highs' or 'simplex'"
        )
    c = -problem.objective if problem.maximize else problem.objective
    lo, hi = problem.bounds_arrays()
    options = (
        {"time_limit": budget.backend_time_limit()}
        if budget is not None
        else None
    )
    with telemetry.span("lp_solve") as span:
        result = linprog(
            c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=np.column_stack([lo, hi]),
            method="highs",
            options=options,
        )
    if result.status == 2:
        raise InfeasibleProblemError()
    if result.status == 3:
        raise UnboundedProblemError()
    if result.status == 1 and budget is not None:
        # HiGHS hit the time_limit we set from the budget: report it as
        # a budget outcome, not a solver failure, so it is never retried.
        raise BudgetExceededError(
            f"HiGHS hit the budget time_limit during {label or 'lp_solve'}",
            where=label or "lp_solve",
            wall_time_s=budget.wall_time_s,
        )
    if result.status != 0 or not result.success:
        raise SolverError(
            f"LP solve failed: {result.message}", status=result.status
        )
    objective = float(result.fun)
    if problem.maximize:
        objective = -objective
    x = np.asarray(result.x, dtype=float)
    # HiGHS round-off can land just outside the box on either side (tiny
    # negatives on >=0 variables, hairs above an upper bound); clamp both
    # so downstream capacity checks never see out-of-bound values.
    np.maximum(x, lo, out=x)
    np.minimum(x, hi, out=x)

    # linprog's marginals are d(min)/d(rhs) of the solved minimization
    # form; relaxing an upper bound can only lower the minimum, so they
    # are non-positive on binding <= rows.  The *improvement* of the
    # stated objective per unit of rhs is -marginal in both senses
    # (for maximization the solved objective was negated, flipping the
    # derivative once more).
    def _duals(block) -> np.ndarray | None:
        marginals = getattr(block, "marginals", None) if block is not None else None
        if marginals is None:
            return None
        return -np.asarray(marginals, dtype=float)

    solution = LPSolution(
        x=x,
        objective=objective,
        iterations=int(result.nit),
        ineq_duals=_duals(getattr(result, "ineqlin", None)),
        eq_duals=_duals(getattr(result, "eqlin", None)),
    )
    _record_solve(telemetry, problem, solution, backend, span.elapsed, label)
    return solution
