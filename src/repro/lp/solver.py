"""Thin, typed wrappers around SciPy's HiGHS LP solver.

The paper used CPLEX; we substitute the HiGHS simplex/IPM bundled with
SciPy (see DESIGN.md).  Everything downstream talks to these wrappers,
so swapping the backend means editing this module only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..errors import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["LinearProgram", "LPSolution", "solve_lp"]


@dataclass
class LinearProgram:
    """A linear program in the standard SciPy form.

    ``maximize`` selects the sense of ``objective``; internally the
    problem is always handed to HiGHS as a minimization.

    Attributes
    ----------
    objective:
        Coefficient vector ``c``.
    a_ub, b_ub:
        Inequality block ``A_ub @ x <= b_ub`` (optional).
    a_eq, b_eq:
        Equality block ``A_eq @ x == b_eq`` (optional).
    lower, upper:
        Variable bounds; scalars broadcast.  Defaults: ``0 <= x``.
    maximize:
        Sense of the objective.
    """

    objective: np.ndarray
    a_ub: sp.spmatrix | None = None
    b_ub: np.ndarray | None = None
    a_eq: sp.spmatrix | None = None
    b_eq: np.ndarray | None = None
    lower: float | np.ndarray = 0.0
    upper: float | np.ndarray = np.inf
    maximize: bool = False

    def __post_init__(self) -> None:
        self.objective = np.asarray(self.objective, dtype=float)
        if self.objective.ndim != 1:
            raise ValidationError("objective must be a 1-D coefficient vector")
        n = self.num_vars
        self.b_ub = self._check_block("a_ub", self.a_ub, self.b_ub, n)
        self.b_eq = self._check_block("a_eq", self.a_eq, self.b_eq, n)

    @staticmethod
    def _check_block(name, mat, rhs, n) -> np.ndarray | None:
        """Validate one constraint block; return the coerced 1-D rhs."""
        if (mat is None) != (rhs is None):
            raise ValidationError(f"{name} and its rhs must come together")
        if mat is None:
            return None
        # Scalars (e.g. a single-row block with rhs 5.0) are legal input;
        # atleast_1d keeps shape[0] valid instead of an IndexError.
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if rhs.ndim != 1:
            raise ValidationError(
                f"{name}'s rhs must be a scalar or 1-D vector, "
                f"got shape {rhs.shape}"
            )
        if mat.shape[1] != n:
            raise ValidationError(
                f"{name} has {mat.shape[1]} columns, expected {n}"
            )
        if mat.shape[0] != rhs.shape[0]:
            raise ValidationError(
                f"{name} has {mat.shape[0]} rows but rhs has {rhs.shape[0]}"
            )
        return rhs

    @property
    def num_vars(self) -> int:
        return self.objective.shape[0]

    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds broadcast to full vectors."""
        lo = np.broadcast_to(np.asarray(self.lower, float), (self.num_vars,))
        hi = np.broadcast_to(np.asarray(self.upper, float), (self.num_vars,))
        if np.any(lo > hi):
            raise ValidationError("a lower bound exceeds its upper bound")
        return lo.copy(), hi.copy()


@dataclass(frozen=True)
class LPSolution:
    """A solved LP.

    Attributes
    ----------
    x:
        Optimal variable values.
    objective:
        Optimal objective value *in the problem's stated sense* (i.e.
        already negated back for maximization problems).
    iterations:
        Simplex/IPM iteration count reported by the backend.
    ineq_duals, eq_duals:
        Dual values (shadow prices) of the inequality and equality
        blocks, sign-adjusted so that a positive inequality dual means
        "one more unit of right-hand side improves the stated objective
        by this much."  ``None`` when the backend reported no duals
        (e.g. MILP solves).
    """

    x: np.ndarray
    objective: float
    iterations: int = 0
    ineq_duals: np.ndarray | None = None
    eq_duals: np.ndarray | None = None


def _matrix_nnz(matrix) -> int:
    """Stored-entry count of an optional (sparse or dense) matrix."""
    if matrix is None:
        return 0
    if sp.issparse(matrix):
        return int(matrix.nnz)
    return int(np.count_nonzero(matrix))


def _record_solve(
    telemetry: Telemetry,
    problem: LinearProgram,
    solution: LPSolution,
    backend: str,
    seconds: float,
    label: str | None,
) -> None:
    """Append one ``lp_solve`` record describing a finished solve."""
    num_ub = problem.a_ub.shape[0] if problem.a_ub is not None else 0
    num_eq = problem.a_eq.shape[0] if problem.a_eq is not None else 0
    telemetry.record(
        "lp_solve",
        label=label,
        backend=backend,
        num_vars=problem.num_vars,
        num_rows=num_ub + num_eq,
        num_ub_rows=num_ub,
        num_eq_rows=num_eq,
        nnz=_matrix_nnz(problem.a_ub) + _matrix_nnz(problem.a_eq),
        iterations=solution.iterations,
        status="optimal",
        maximize=problem.maximize,
        objective=solution.objective,
        seconds=seconds,
    )
    telemetry.count("lp_solves")
    telemetry.count("lp_iterations", solution.iterations)


def solve_lp(
    problem: LinearProgram,
    backend: str = "highs",
    telemetry: Telemetry | None = None,
    label: str | None = None,
) -> LPSolution:
    """Solve ``problem``; raise typed errors on failure.

    Parameters
    ----------
    problem:
        The LP to solve.
    backend:
        ``"highs"`` (default, SciPy's HiGHS — use this at scale) or
        ``"simplex"`` (the pure-Python reference solver in
        :mod:`repro.lp.simplex`, for small instances and auditing; it
        does not report duals).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` collector; when given,
        the solve is timed under an ``"lp_solve"`` span and an
        ``lp_solve`` record captures dimensions, nnz, iteration count,
        backend and status.  ``None`` (the default) measures nothing.
    label:
        Free-form tag stored on the telemetry record (e.g. ``"stage2"``)
        so multi-solve pipelines stay tellable apart.

    Raises
    ------
    InfeasibleProblemError
        No feasible point exists.
    UnboundedProblemError
        The objective is unbounded in the requested sense.
    SolverError
        Any other backend failure (numerical issues, limits).
    """
    telemetry = telemetry or NULL_TELEMETRY
    if backend == "simplex":
        from .simplex import simplex_solve

        with telemetry.span("lp_solve") as span:
            solution = simplex_solve(problem)
        _record_solve(telemetry, problem, solution, backend, span.elapsed, label)
        return solution
    if backend != "highs":
        raise ValidationError(
            f"unknown backend {backend!r}; pick 'highs' or 'simplex'"
        )
    c = -problem.objective if problem.maximize else problem.objective
    lo, hi = problem.bounds_arrays()
    with telemetry.span("lp_solve") as span:
        result = linprog(
            c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=np.column_stack([lo, hi]),
            method="highs",
        )
    if result.status == 2:
        raise InfeasibleProblemError()
    if result.status == 3:
        raise UnboundedProblemError()
    if result.status != 0 or not result.success:
        raise SolverError(
            f"LP solve failed: {result.message}", status=result.status
        )
    objective = float(result.fun)
    if problem.maximize:
        objective = -objective
    x = np.asarray(result.x, dtype=float)
    # HiGHS round-off can land just outside the box on either side (tiny
    # negatives on >=0 variables, hairs above an upper bound); clamp both
    # so downstream capacity checks never see out-of-bound values.
    np.maximum(x, lo, out=x)
    np.minimum(x, hi, out=x)

    # linprog's marginals are d(min)/d(rhs) of the solved minimization
    # form; relaxing an upper bound can only lower the minimum, so they
    # are non-positive on binding <= rows.  The *improvement* of the
    # stated objective per unit of rhs is -marginal in both senses
    # (for maximization the solved objective was negated, flipping the
    # derivative once more).
    def _duals(block) -> np.ndarray | None:
        marginals = getattr(block, "marginals", None) if block is not None else None
        if marginals is None:
            return None
        return -np.asarray(marginals, dtype=float)

    solution = LPSolution(
        x=x,
        objective=objective,
        iterations=int(result.nit),
        ineq_duals=_duals(getattr(result, "ineqlin", None)),
        eq_duals=_duals(getattr(result, "eqlin", None)),
    )
    _record_solve(telemetry, problem, solution, backend, span.elapsed, label)
    return solution
