"""A from-scratch two-phase primal simplex solver (dense, small LPs).

The paper's framework stands on an LP solver it treats as a black box
(CPLEX there, HiGHS here).  This module provides an *auditable* third
option: a classic two-phase tableau simplex with Bland's anti-cycling
rule, written in plain NumPy.  It exists for three reasons:

* **cross-validation** — the test suite solves the same instances with
  HiGHS and with this solver and demands identical optima, guarding
  against silent mis-assembly of the constraint blocks;
* **pedagogy** — the whole pipeline can be read end to end with no
  compiled dependencies;
* **portability** — a pure-Python fallback for environments without
  SciPy's HiGHS.

It is *not* for production scale: dense tableaus cost O(m·n) memory and
O(m·n) per pivot, so a size guard rejects big instances.  Use
``backend="highs"`` (the default in :func:`repro.lp.solver.solve_lp`)
for real workloads.

Standard-form conversion
------------------------

The :class:`~repro.lp.solver.LinearProgram` is rewritten as
``min c.x  s.t.  A x = b, x >= 0``:

* finite lower bounds are shifted out (``x = y + lo``);
* finite upper bounds become rows ``y + s = hi - lo``;
* ``A_ub`` rows gain slack variables; rows are sign-flipped so ``b >= 0``;
* phase 1 minimizes the sum of artificial variables; a positive optimum
  proves infeasibility, otherwise phase 2 optimizes the real objective.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)
from .solver import LinearProgram, LPSolution

__all__ = ["simplex_solve", "SIMPLEX_SIZE_LIMIT"]

#: Largest (rows + 1) * (columns + artificials) dense tableau permitted.
SIMPLEX_SIZE_LIMIT = 4_000_000

_TOL = 1e-9


def simplex_solve(
    problem: LinearProgram,
    size_limit: int = SIMPLEX_SIZE_LIMIT,
    max_pivots: int = 100_000,
) -> LPSolution:
    """Solve ``problem`` with the two-phase tableau simplex.

    Raises the same typed errors as :func:`repro.lp.solver.solve_lp`;
    duals are not reported (``ineq_duals``/``eq_duals`` stay ``None``).
    """
    c = problem.objective.astype(float)
    if problem.maximize:
        c = -c
    lo, hi = problem.bounds_arrays()
    if np.any(np.isneginf(lo)):
        raise ValidationError(
            "the simplex backend requires finite lower bounds"
        )
    n = problem.num_vars

    # Shift lower bounds to zero: x = y + lo.
    # Collect equality rows (A_eq, upper-bound rows) and <= rows (A_ub).
    a_ub = _dense(problem.a_ub, n)
    b_ub = (
        np.asarray(problem.b_ub, dtype=float)
        if problem.b_ub is not None
        else np.empty(0)
    )
    a_eq = _dense(problem.a_eq, n)
    b_eq = (
        np.asarray(problem.b_eq, dtype=float)
        if problem.b_eq is not None
        else np.empty(0)
    )
    if a_ub.size:
        b_ub = b_ub - a_ub @ lo
    if a_eq.size:
        b_eq = b_eq - a_eq @ lo
    shift_cost = float(c @ lo)

    # Finite upper bounds become  y_j + s = hi_j - lo_j.
    bounded = np.nonzero(np.isfinite(hi))[0]
    ub_rows = np.zeros((len(bounded), n))
    ub_rows[np.arange(len(bounded)), bounded] = 1.0
    ub_rhs = hi[bounded] - lo[bounded]
    if np.any(ub_rhs < -_TOL):
        raise InfeasibleProblemError("a variable's bounds cross")

    num_ub = a_ub.shape[0] if a_ub.size else 0
    num_eq = a_eq.shape[0] if a_eq.size else 0
    num_bound = len(bounded)
    m = num_ub + num_bound + num_eq

    # Columns: n structural + (num_ub + num_bound) slacks + m artificials.
    num_slack = num_ub + num_bound
    total = n + num_slack + m
    if (m + 1) * (total + 1) > size_limit:
        raise ValidationError(
            f"instance too large for the dense simplex backend "
            f"({m} rows x {total} columns); use backend='highs'"
        )

    A = np.zeros((m, n + num_slack))
    b = np.zeros(m)
    row = 0
    if num_ub:
        A[:num_ub, :n] = a_ub
        A[np.arange(num_ub), n + np.arange(num_ub)] = 1.0
        b[:num_ub] = b_ub
        row = num_ub
    if num_bound:
        A[row : row + num_bound, :n] = ub_rows
        A[row + np.arange(num_bound), n + num_ub + np.arange(num_bound)] = 1.0
        b[row : row + num_bound] = ub_rhs
        row += num_bound
    if num_eq:
        A[row : row + num_eq, :n] = a_eq
        b[row : row + num_eq] = b_eq

    # Normalize to b >= 0 (flips slack signs too, which is fine: the
    # slack simply becomes a surplus with coefficient -1).
    negative = b < 0
    A[negative] *= -1.0
    b[negative] *= -1.0

    # Phase 1 tableau with artificial basis.
    tableau = np.zeros((m + 1, total + 1))
    tableau[:m, : n + num_slack] = A
    tableau[:m, n + num_slack : total] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(n + num_slack, total))
    # Phase-1 objective: minimize sum of artificials -> reduced costs.
    tableau[m, : n + num_slack] = -A.sum(axis=0)
    tableau[m, -1] = -b.sum()

    pivots = _run_simplex(tableau, basis, max_pivots, allowed=total)
    if tableau[m, -1] < -1e-7:
        raise InfeasibleProblemError("phase-1 optimum is positive")

    # Drive any remaining artificial variables out of the basis.
    for i, var in enumerate(basis):
        if var >= n + num_slack:
            pivot_col = next(
                (
                    j
                    for j in range(n + num_slack)
                    if abs(tableau[i, j]) > 1e-7
                ),
                None,
            )
            if pivot_col is not None:
                _pivot(tableau, i, pivot_col)
                basis[i] = pivot_col
            # else: redundant row; leave the artificial at value 0.

    # Phase 2: real objective over structural + slack columns.
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for i, var in enumerate(basis):
        if tableau[m, var] != 0.0:
            tableau[m, :] -= tableau[m, var] * tableau[i, :]
    pivots += _run_simplex(
        tableau, basis, max_pivots - pivots, allowed=n + num_slack
    )

    y = np.zeros(n + num_slack)
    for i, var in enumerate(basis):
        if var < n + num_slack:
            y[var] = tableau[i, -1]
    x = y[:n] + lo
    objective = float(c @ y[:n]) + shift_cost
    if problem.maximize:
        objective = -objective
    return LPSolution(x=x, objective=objective, iterations=pivots)


def _dense(matrix, n: int) -> np.ndarray:
    if matrix is None:
        return np.empty((0, n))
    if sp.issparse(matrix):
        return matrix.toarray().astype(float)
    return np.asarray(matrix, dtype=float)


def _run_simplex(
    tableau: np.ndarray, basis: list[int], max_pivots: int, allowed: int
) -> int:
    """Primal simplex iterations with Bland's rule; returns pivot count.

    ``allowed`` restricts entering variables to the first columns (used
    to lock artificials out during phase 2).
    """
    m = tableau.shape[0] - 1
    pivots = 0
    while True:
        # Bland: the lowest-index column with a negative reduced cost.
        entering = None
        for j in range(allowed):
            if tableau[m, j] < -_TOL:
                entering = j
                break
        if entering is None:
            return pivots
        # Ratio test; Bland tie-break on the basis variable index.
        best_ratio = np.inf
        leaving = None
        for i in range(m):
            coeff = tableau[i, entering]
            if coeff > _TOL:
                ratio = tableau[i, -1] / coeff
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving is None or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving is None:
            raise UnboundedProblemError(
                "simplex: entering column has no positive coefficients"
            )
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        pivots += 1
        if pivots >= max_pivots:
            raise SolverError(
                f"simplex exceeded {max_pivots} pivots; "
                "likely numerical trouble on this instance"
            )


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row, :])
