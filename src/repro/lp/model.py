"""Problem structure: variables and constraint matrices over (job, path, slice).

Every optimization problem in the paper — stage 1 (MCF), stage 2
(weighted throughput) and SUB-RET — shares one variable space: a
wavelength count ``x_i(p, j)`` for each job ``i``, allowed path
``p ∈ P(s_i, d_i)`` and allowed time slice ``j``.  This module builds
that space once as a :class:`ProblemStructure` and derives the shared
sparse constraint blocks from it:

* the **capacity block** — one row per (edge, slice) pair that any
  allowed path crosses, expressing constraint (3),
* the **demand block** — one row per job with entries ``LEN(j)``, the
  left-hand side of constraints (2), (8) and (15).

Column layout
-------------

Columns are grouped by job, then by path, then by slice in increasing
order.  A job's allowed slices form a contiguous range (its window), so
the column of ``(job i, path p, slice j)`` is

``job_offset[i] + p * span_i + (j - first_slice_i)``,

which both the vectorized assembly here and the greedy pass in
:mod:`repro.core.lpdar` exploit.  Demands are normalized by the network's
``wavelength_rate`` (paper Section II-B.2), so one unit of ``x`` held for
one slice of length ``LEN`` moves ``LEN`` normalized volume.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..errors import ValidationError
from ..network.graph import Network
from ..obs import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.capacity import CapacityProfile
from ..network.paths import Path, build_path_sets
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet

__all__ = ["ProblemStructure", "job_capacity_fragment"]

Node = Hashable


def job_capacity_fragment(
    paths: Sequence[Path], span: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One job's capacity-block sparsity pattern, in relative coordinates.

    Returns three parallel read-only ``int64`` arrays
    ``(edge, rel_slice, rel_col)``: entry ``t`` says column
    ``job_offset + rel_col[t]`` loads edge ``edge[t]`` on slice
    ``first_slice + rel_slice[t]``.  The pattern depends only on the
    job's path edge ids and its window *span* — not on where the window
    sits on the grid or where the job's columns start — so the engine's
    layout layer caches it across RET probes, simulator epochs and jobs
    that happen to share ``(paths, span)``.
    """
    rel = np.arange(span, dtype=np.int64)
    edge_parts: list[np.ndarray] = []
    slice_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    for p, path in enumerate(paths):
        edges = np.asarray(path.edge_ids, dtype=np.int64)
        # Each edge of the path is loaded on every allowed slice.
        edge_parts.append(np.repeat(edges, span))
        slice_parts.append(np.tile(rel, len(edges)))
        col_parts.append(np.tile(p * span + rel, len(edges)))
    edge = np.concatenate(edge_parts)
    rel_slice = np.concatenate(slice_parts)
    rel_col = np.concatenate(col_parts)
    for arr in (edge, rel_slice, rel_col):
        arr.setflags(write=False)
    return edge, rel_slice, rel_col


class ProblemStructure:
    """The shared variable space and constraint blocks of one instance.

    Parameters
    ----------
    network:
        The wavelength-switched network.
    jobs:
        Jobs to schedule.  Each must have at least one allowed path and
        at least one slice fully inside its window, otherwise a
        :class:`ValidationError` identifies the offending job (use
        admission control to drop unschedulable requests first).
    grid:
        Time discretization.  Must cover the latest job end time.
    k_paths:
        Paths per origin-destination pair (the paper uses 4–8).
    path_sets:
        Optional precomputed paths per OD pair (e.g. reused across RET
        iterations); overrides ``k_paths`` lookup for pairs present.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; assembly is timed under a
        ``"structure_build"`` span and a ``structure`` record captures
        the instance's dimensions (jobs, columns, capacity rows, nnz).
    fragment_cache:
        Optional mutable mapping shared across builds (normally owned by
        :class:`~repro.engine.layout.LayoutLayer`): per-job capacity
        fragments keyed on ``(path edge ids, span)`` are looked up
        before being recomputed, so rebuilds over a changed grid reuse
        every unchanged per-job segment.  Hits and builds count as
        ``layout_fragment_hits`` / ``layout_fragment_builds``.

    Notes
    -----
    The structure is immutable after construction; all solver front-ends
    in :mod:`repro.core` take it by reference.
    """

    def __init__(
        self,
        network: Network,
        jobs: JobSet,
        grid: TimeGrid,
        k_paths: int = 4,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        capacity_profile: "CapacityProfile | None" = None,
        telemetry: Telemetry | None = None,
        fragment_cache: dict | None = None,
    ) -> None:
        telemetry = telemetry or NULL_TELEMETRY
        with telemetry.span("structure_build"):
            self._build(
                network,
                jobs,
                grid,
                k_paths,
                path_sets,
                capacity_profile,
                fragment_cache,
                telemetry,
            )
        telemetry.record(
            "structure",
            jobs=len(jobs),
            num_cols=self.num_cols,
            cap_rows=int(self.capacity_matrix.shape[0]),
            nnz=int(self.capacity_matrix.nnz + self.demand_matrix.nnz),
            slices=self.grid.num_slices,
        )
        telemetry.count("structures_built")

    def _build(
        self,
        network: Network,
        jobs: JobSet,
        grid: TimeGrid,
        k_paths: int,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None,
        capacity_profile: "CapacityProfile | None",
        fragment_cache: dict | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if len(jobs) == 0:
            raise ValidationError("cannot build a problem over zero jobs")
        if k_paths < 1:
            raise ValidationError(f"k_paths must be >= 1, got {k_paths}")
        self.network = network
        self.jobs = jobs
        self.grid = grid
        self.k_paths = k_paths
        if capacity_profile is not None:
            if capacity_profile.network is not network:
                raise ValidationError(
                    "capacity profile was built for a different network"
                )
            if capacity_profile.grid != grid:
                raise ValidationError(
                    "capacity profile was built for a different time grid"
                )
        self.capacity_profile = capacity_profile

        max_end = jobs.max_end()
        if max_end > grid.end + 1e-9:
            raise ValidationError(
                f"grid ends at {grid.end} but a job ends at {max_end}; "
                "extend the grid to cover every job window"
            )

        # Resolve allowed paths per job.
        if path_sets is None:
            path_sets = build_path_sets(network, jobs.od_pairs(), k_paths)
        self.paths: list[list[Path]] = []
        for job in jobs:
            pair = (job.source, job.dest)
            pset = list(path_sets.get(pair) or ())
            if not pset:
                pset = build_path_sets(network, [pair], k_paths)[pair]
            if not pset:
                raise ValidationError(
                    f"job {job.id!r}: no path from {job.source!r} to "
                    f"{job.dest!r}"
                )
            self.paths.append(list(pset[:k_paths]))

        # Allowed slice ranges per job (contiguous, paper constraint (4)).
        self.first_slice = np.empty(len(jobs), dtype=np.int64)
        self.span = np.empty(len(jobs), dtype=np.int64)
        for i, job in enumerate(jobs):
            window = grid.window_slices(job.start, job.end)
            if len(window) == 0:
                raise ValidationError(
                    f"job {job.id!r}: window [{job.start}, {job.end}] "
                    "contains no whole time slice"
                )
            self.first_slice[i] = window.start
            self.span[i] = len(window)

        self.num_paths = np.array([len(p) for p in self.paths], dtype=np.int64)

        # Column layout.
        cols_per_job = self.num_paths * self.span
        self.job_offset = np.zeros(len(jobs) + 1, dtype=np.int64)
        np.cumsum(cols_per_job, out=self.job_offset[1:])
        self.num_cols = int(self.job_offset[-1])

        self.col_job = np.repeat(np.arange(len(jobs)), cols_per_job)
        self.col_slice = np.concatenate(
            [
                np.tile(
                    np.arange(self.first_slice[i], self.first_slice[i] + self.span[i]),
                    self.num_paths[i],
                )
                for i in range(len(jobs))
            ]
        )
        self.col_path = np.concatenate(
            [
                np.repeat(np.arange(self.num_paths[i]), self.span[i])
                for i in range(len(jobs))
            ]
        )
        self.col_len = grid.lengths[self.col_slice]
        for arr in (
            self.first_slice,
            self.span,
            self.num_paths,
            self.job_offset,
            self.col_job,
            self.col_slice,
            self.col_path,
            self.col_len,
        ):
            arr.setflags(write=False)

        # Normalized demands (paper: sizes divided by wavelength capacity).
        self.demands = jobs.sizes() / network.wavelength_rate
        self.demands.setflags(write=False)

        self._assembly_cache: dict = {}
        self._build_capacity_block(fragment_cache, telemetry)
        self._build_demand_block()

    # ------------------------------------------------------------------
    # Constraint blocks
    # ------------------------------------------------------------------
    def _build_capacity_block(
        self,
        fragment_cache: dict | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        """Rows of constraint (3): one per (edge, slice) actually used.

        Per-job sparsity patterns come from
        :func:`job_capacity_fragment` in window-relative coordinates and
        are shifted to absolute rows/columns here; a shared
        ``fragment_cache`` skips recomputing patterns seen in previous
        builds (same paths and span, any window position).
        """
        num_slices = self.grid.num_slices
        row_keys_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        for i in range(len(self.jobs)):
            span = int(self.span[i])
            fragment = None
            key = None
            if fragment_cache is not None:
                key = (tuple(p.edge_ids for p in self.paths[i]), span)
                fragment = fragment_cache.get(key)
            if fragment is None:
                fragment = job_capacity_fragment(self.paths[i], span)
                if fragment_cache is not None:
                    fragment_cache[key] = fragment
                telemetry.count("layout_fragment_builds")
            else:
                telemetry.count("layout_fragment_hits")
            edge, rel_slice, rel_col = fragment
            row_keys_parts.append(
                edge * num_slices + (int(self.first_slice[i]) + rel_slice)
            )
            col_parts.append(int(self.job_offset[i]) + rel_col)
        # Absolute per-job segments, kept for delta patching: a donor
        # job whose window, routes and column offset all line up lends
        # its segment verbatim to the patched build
        # (:func:`repro.engine.delta.patch_structure`).
        self._cap_segments = list(zip(row_keys_parts, col_parts))
        row_keys = np.concatenate(row_keys_parts)
        cols = np.concatenate(col_parts)

        unique_keys, rows = np.unique(row_keys, return_inverse=True)
        self.cap_row_edge = (unique_keys // num_slices).astype(np.int64)
        self.cap_row_slice = (unique_keys % num_slices).astype(np.int64)
        if self.capacity_profile is not None:
            self.cap_rhs = self.capacity_profile.matrix[
                self.cap_row_edge, self.cap_row_slice
            ].astype(float)
        else:
            capacities = self.network.capacities()
            self.cap_rhs = capacities[self.cap_row_edge].astype(float)
        data = np.ones(len(cols), dtype=float)
        self.capacity_matrix = sp.coo_matrix(
            (data, (rows, cols)),
            shape=(len(unique_keys), self.num_cols),
        ).tocsr()
        self.cap_row_edge.setflags(write=False)
        self.cap_row_slice.setflags(write=False)
        self.cap_rhs.setflags(write=False)

    def _build_demand_block(self) -> None:
        """Rows of constraints (2)/(8)/(15): per-job ``sum x * LEN``."""
        self.demand_matrix = sp.coo_matrix(
            (self.col_len, (self.col_job, np.arange(self.num_cols))),
            shape=(len(self.jobs), self.num_cols),
        ).tocsr()

    # ------------------------------------------------------------------
    # Column arithmetic
    # ------------------------------------------------------------------
    def column(self, job: int, path: int, slice_index: int) -> int:
        """Flat column index of ``x_job(path, slice_index)``."""
        if not 0 <= job < len(self.jobs):
            raise ValidationError(f"job index {job} out of range")
        if not 0 <= path < self.num_paths[job]:
            raise ValidationError(
                f"path index {path} out of range for job {job}"
            )
        first = int(self.first_slice[job])
        if not first <= slice_index < first + int(self.span[job]):
            raise ValidationError(
                f"slice {slice_index} outside job {job}'s allowed window "
                f"[{first}, {first + int(self.span[job])})"
            )
        return (
            int(self.job_offset[job])
            + path * int(self.span[job])
            + (slice_index - first)
        )

    def job_columns(self, job: int) -> slice:
        """Contiguous column range of all of ``job``'s variables."""
        if not 0 <= job < len(self.jobs):
            raise ValidationError(f"job index {job} out of range")
        return slice(int(self.job_offset[job]), int(self.job_offset[job + 1]))

    def allowed_slices(self, job: int) -> range:
        """The contiguous allowed slice range of ``job``."""
        if not 0 <= job < len(self.jobs):
            raise ValidationError(f"job index {job} out of range")
        first = int(self.first_slice[job])
        return range(first, first + int(self.span[job]))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def delivered(self, x: np.ndarray) -> np.ndarray:
        """Normalized volume delivered per job: ``sum_j,p x * LEN(j)``."""
        x = self._check_x(x)
        return self.demand_matrix @ x

    def throughputs(self, x: np.ndarray) -> np.ndarray:
        """Per-job throughput ``Z_i = delivered_i / d_i`` (paper eq. (6))."""
        return self.delivered(x) / self.demands

    def weighted_throughput(self, x: np.ndarray) -> float:
        """Paper objective (7): ``sum_i Z_i D_i / sum_i D_i``."""
        return float(self.delivered(x).sum() / self.demands.sum())

    def link_loads(self, x: np.ndarray) -> np.ndarray:
        """Dense ``(num_edges, num_slices)`` wavelength load matrix."""
        x = self._check_x(x)
        loads = np.zeros(
            (self.network.num_edges, self.grid.num_slices), dtype=float
        )
        row_loads = self.capacity_matrix @ x
        loads[self.cap_row_edge, self.cap_row_slice] = row_loads
        return loads

    def capacity_grid(self) -> np.ndarray:
        """Dense ``(num_edges, num_slices)`` float matrix of ``C_e(j)``."""
        if self.capacity_profile is not None:
            return self.capacity_profile.matrix.astype(float)
        caps = self.network.capacities().astype(float)
        return np.repeat(caps[:, None], self.grid.num_slices, axis=1)

    def residual_capacity(self, x: np.ndarray) -> np.ndarray:
        """Dense ``(num_edges, num_slices)`` remaining-wavelength matrix."""
        return self.capacity_grid() - self.link_loads(x)

    def capacity_violation(self, x: np.ndarray) -> float:
        """Largest capacity overshoot across (edge, slice) rows (0 if none)."""
        x = self._check_x(x)
        excess = self.capacity_matrix @ x - self.cap_rhs
        return float(max(excess.max(initial=0.0), 0.0))

    def _check_x(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.num_cols,):
            raise ValidationError(
                f"assignment vector must have shape ({self.num_cols},), "
                f"got {x.shape}"
            )
        return x

    def __repr__(self) -> str:
        return (
            f"ProblemStructure(jobs={len(self.jobs)}, "
            f"cols={self.num_cols}, cap_rows={self.capacity_matrix.shape[0]}, "
            f"slices={self.grid.num_slices})"
        )
