"""LP substrate: problem structure, HiGHS LP wrapper, exact MILP baseline."""

from .milp import MILP_SIZE_LIMIT, solve_milp
from .model import ProblemStructure
from .solver import (
    DEFAULT_RESILIENCE,
    LinearProgram,
    LPSolution,
    SolveBudget,
    SolveResilience,
    solve_lp,
)

__all__ = [
    "ProblemStructure",
    "LinearProgram",
    "LPSolution",
    "SolveResilience",
    "SolveBudget",
    "DEFAULT_RESILIENCE",
    "solve_lp",
    "solve_milp",
    "MILP_SIZE_LIMIT",
]
