"""LP substrate: problem structure, HiGHS LP wrapper, exact MILP baseline."""

from .milp import MILP_SIZE_LIMIT, solve_milp
from .model import ProblemStructure
from .solver import LinearProgram, LPSolution, solve_lp

__all__ = [
    "ProblemStructure",
    "LinearProgram",
    "LPSolution",
    "solve_lp",
    "solve_milp",
    "MILP_SIZE_LIMIT",
]
