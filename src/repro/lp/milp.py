"""Exact mixed-integer solving for *small* instances.

The paper could not obtain optimal integer solutions ("it is practically
impossible to get the optimal integer solutions using standard solvers
... but for very small setups").  SciPy ships HiGHS-MIP, which handles
tiny instances fine, so this module exists purely as a *validation
baseline*: tests and the ``bench_exact_gap`` benchmark certify LPDAR
against true integer optima where the paper could only compare to the LP
upper bound.  A hard size guard keeps it from being misused at scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import (
    InfeasibleProblemError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)
from .solver import LinearProgram, LPSolution

__all__ = ["solve_milp", "MILP_SIZE_LIMIT"]

#: Refuse exact MILP solves with more variables than this; the paper's
#: point is precisely that large instances are intractable.
MILP_SIZE_LIMIT = 20_000


def solve_milp(
    problem: LinearProgram,
    size_limit: int = MILP_SIZE_LIMIT,
    time_limit: float | None = None,
) -> LPSolution:
    """Solve ``problem`` with all variables integer, via HiGHS-MIP.

    Parameters
    ----------
    problem:
        The LP whose variables should all be integral.
    size_limit:
        Guard against accidentally launching an intractable solve.
    time_limit:
        Optional wall-clock limit in seconds, forwarded to HiGHS.

    Raises
    ------
    ValidationError
        The instance exceeds ``size_limit`` variables.
    InfeasibleProblemError, UnboundedProblemError, SolverError
        As for :func:`repro.lp.solver.solve_lp`.
    """
    n = problem.num_vars
    if n > size_limit:
        raise ValidationError(
            f"refusing exact MILP with {n} variables (> {size_limit}); "
            "use LPDAR for instances of this size"
        )
    c = -problem.objective if problem.maximize else problem.objective
    constraints = []
    if problem.a_ub is not None:
        constraints.append(
            LinearConstraint(
                sp.csr_matrix(problem.a_ub), -np.inf, np.asarray(problem.b_ub, float)
            )
        )
    if problem.a_eq is not None:
        rhs = np.asarray(problem.b_eq, float)
        constraints.append(
            LinearConstraint(sp.csr_matrix(problem.a_eq), rhs, rhs)
        )
    lo, hi = problem.bounds_arrays()
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c,
        constraints=constraints,
        integrality=np.ones(n, dtype=int),
        bounds=Bounds(lo, hi),
        options=options,
    )
    if result.status == 2:
        raise InfeasibleProblemError("MILP is infeasible")
    if result.status == 3:
        raise UnboundedProblemError("MILP is unbounded")
    if "unbounded or infeasible" in (result.message or "").lower():
        # HiGHS-MIP sometimes cannot distinguish the two (status 4).
        raise UnboundedProblemError("MILP is unbounded or infeasible")
    if not result.success or result.x is None:
        raise SolverError(
            f"MILP solve failed: {result.message}", status=result.status
        )
    objective = float(result.fun)
    if problem.maximize:
        objective = -objective
    x = np.rint(np.asarray(result.x, dtype=float))
    return LPSolution(x=x, objective=objective, iterations=0)
