"""Time discretization: slices, slice lengths and the :math:`I(\\cdot)` map.

The paper divides time into *slices* (Section II-A).  A :class:`TimeGrid`
is an increasing sequence of boundaries ``t_0 < t_1 < ... < t_L`` defining
``L`` slices, where slice ``j`` covers the half-open interval
``[t_j, t_{j+1})`` and has length ``LEN(j) = t_{j+1} - t_j``.

Start/end constraint semantics
------------------------------

Constraint (4) of the paper forces ``x_i(p, j) = 0`` for ``j <= I(S_i)``
or ``j > I(E_i)``.  The service promise behind it is: *begin after the
requested start time, finish before the requested end time*.  We therefore
adopt the conservative "fully contained" interpretation: a slice ``j`` is
allowed for a job with window ``[S, E]`` iff ``t_j >= S`` and
``t_{j+1} <= E``.  When ``S`` and ``E`` fall exactly on slice boundaries
(the common case in all of the paper's experiments, where windows are
given in whole slices) this is identical to the paper's formulation; when
they fall strictly inside a slice it rounds the window inward, which keeps
the guarantee sound.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from .errors import ValidationError

__all__ = ["TimeGrid"]


class TimeGrid:
    """An increasing sequence of slice boundaries.

    Parameters
    ----------
    boundaries:
        Strictly increasing sequence ``t_0 < t_1 < ... < t_L`` of slice
        boundaries.  ``L`` (``len(boundaries) - 1``) slices are defined.

    Examples
    --------
    >>> grid = TimeGrid.uniform(num_slices=4, slice_length=2.0)
    >>> grid.num_slices
    4
    >>> grid.length(1)
    2.0
    >>> grid.window_slices(2.0, 8.0)
    range(1, 4)
    """

    __slots__ = ("_boundaries", "_lengths")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = np.asarray(boundaries, dtype=float)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ValidationError(
                "TimeGrid needs at least two boundaries (one slice), "
                f"got {bounds.size}"
            )
        if not np.all(np.isfinite(bounds)):
            raise ValidationError("TimeGrid boundaries must be finite")
        diffs = np.diff(bounds)
        if np.any(diffs <= 0):
            raise ValidationError("TimeGrid boundaries must be strictly increasing")
        self._boundaries = bounds
        self._boundaries.setflags(write=False)
        self._lengths = diffs
        self._lengths.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, num_slices: int, slice_length: float = 1.0, start: float = 0.0
    ) -> "TimeGrid":
        """Build a grid of ``num_slices`` equal slices of ``slice_length``."""
        if num_slices < 1:
            raise ValidationError(f"num_slices must be >= 1, got {num_slices}")
        if slice_length <= 0:
            raise ValidationError(f"slice_length must be > 0, got {slice_length}")
        bounds = start + slice_length * np.arange(num_slices + 1, dtype=float)
        return cls(bounds)

    @classmethod
    def covering(
        cls, horizon: float, slice_length: float = 1.0, start: float = 0.0
    ) -> "TimeGrid":
        """Uniform grid from ``start`` whose last boundary is ``>= horizon``."""
        if horizon <= start:
            raise ValidationError(
                f"horizon ({horizon}) must exceed start ({start})"
            )
        num = int(np.ceil((horizon - start) / slice_length - 1e-12))
        return cls.uniform(max(num, 1), slice_length, start)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def boundaries(self) -> np.ndarray:
        """Read-only array of the ``L + 1`` slice boundaries."""
        return self._boundaries

    @property
    def lengths(self) -> np.ndarray:
        """Read-only array of slice lengths, ``LEN(j)`` for each slice."""
        return self._lengths

    @property
    def num_slices(self) -> int:
        """Number of slices ``L``."""
        return len(self._lengths)

    @property
    def start(self) -> float:
        """First boundary ``t_0``."""
        return float(self._boundaries[0])

    @property
    def end(self) -> float:
        """Last boundary ``t_L``."""
        return float(self._boundaries[-1])

    @property
    def horizon(self) -> float:
        """Total covered time, ``t_L - t_0``."""
        return self.end - self.start

    def length(self, j: int) -> float:
        """``LEN(j)``: length of slice ``j``."""
        return float(self._lengths[self._check_slice(j)])

    def slice_start(self, j: int) -> float:
        """Left boundary ``t_j`` of slice ``j``."""
        return float(self._boundaries[self._check_slice(j)])

    def slice_end(self, j: int) -> float:
        """Right boundary ``t_{j+1}`` of slice ``j``."""
        return float(self._boundaries[self._check_slice(j) + 1])

    def _check_slice(self, j: int) -> int:
        j = int(j)
        if not 0 <= j < self.num_slices:
            raise ValidationError(
                f"slice index {j} out of range [0, {self.num_slices})"
            )
        return j

    def __len__(self) -> int:
        return self.num_slices

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_slices))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeGrid):
            return NotImplemented
        return np.array_equal(self._boundaries, other._boundaries)

    def __hash__(self) -> int:
        return hash(self._boundaries.tobytes())

    def __repr__(self) -> str:
        return (
            f"TimeGrid(num_slices={self.num_slices}, "
            f"start={self.start:g}, end={self.end:g})"
        )

    # ------------------------------------------------------------------
    # The I(.) map and job windows
    # ------------------------------------------------------------------
    def slice_of(self, t: float) -> int:
        """``I(t)``: index of the slice containing time ``t``.

        Slice ``j`` covers ``[t_j, t_{j+1})``; the final boundary ``t_L``
        maps to the last slice.  Raises :class:`ValidationError` when ``t``
        lies outside the grid.
        """
        if t < self.start or t > self.end:
            raise ValidationError(
                f"time {t} outside grid [{self.start}, {self.end}]"
            )
        if t >= self.end:
            return self.num_slices - 1
        j = int(np.searchsorted(self._boundaries, t, side="right")) - 1
        return max(j, 0)

    def window_slices(self, start: float, end: float) -> range:
        """Slices fully contained in the window ``[start, end]``.

        Returns the (possibly empty) contiguous ``range`` of slice indices
        ``j`` with ``t_j >= start`` and ``t_{j+1} <= end``.  Times outside
        the grid are clipped to the grid, so a window reaching past the
        last boundary simply ends at the last slice.
        """
        if end < start:
            raise ValidationError(f"window end ({end}) precedes start ({start})")
        lo = float(np.clip(start, self.start, self.end))
        hi = float(np.clip(end, self.start, self.end))
        # First boundary >= lo starts the first allowed slice.
        first = int(np.searchsorted(self._boundaries, lo - 1e-12, side="left"))
        if self._boundaries[first] < lo - 1e-12:  # pragma: no cover - guard
            first += 1
        # Last boundary <= hi closes the last allowed slice.
        last_boundary = int(
            np.searchsorted(self._boundaries, hi + 1e-12, side="right") - 1
        )
        last = last_boundary - 1  # slice ends at boundary index last+1
        if last < first:
            return range(first, first)  # empty
        return range(first, last + 1)

    def window_mask(self, start: float, end: float) -> np.ndarray:
        """Boolean mask over slices for :meth:`window_slices`."""
        mask = np.zeros(self.num_slices, dtype=bool)
        window = self.window_slices(start, end)
        if len(window) > 0:
            mask[window.start : window.stop] = True
        return mask

    # ------------------------------------------------------------------
    # Derived grids
    # ------------------------------------------------------------------
    def extended(self, horizon: float) -> "TimeGrid":
        """Grid extended with uniform slices until it covers ``horizon``.

        The appended slices copy the length of the last existing slice.
        Used by the RET algorithm when end times are stretched by
        ``(1 + b)`` beyond the original grid.  Returns ``self`` when the
        grid already covers ``horizon``.
        """
        if horizon <= self.end:
            return self
        tail_len = float(self._lengths[-1])
        extra = int(np.ceil((horizon - self.end) / tail_len - 1e-12))
        new_tail = self.end + tail_len * np.arange(1, extra + 1, dtype=float)
        return TimeGrid(np.concatenate([self._boundaries, new_tail]))

    def prefix(self, num_slices: int) -> "TimeGrid":
        """Grid containing only the first ``num_slices`` slices."""
        if not 1 <= num_slices <= self.num_slices:
            raise ValidationError(
                f"prefix length {num_slices} out of range [1, {self.num_slices}]"
            )
        return TimeGrid(self._boundaries[: num_slices + 1])
