"""Deterministic crash injection for the controller loop.

Modeled on :mod:`repro.faults` — but where a fault schedule breaks the
*network*, a :class:`CrashInjector` kills the *controller*, at one of
the named points in the epoch loop where a real process death would
leave meaningfully different on-disk state:

``pre-solve``
    Before the epoch's admission/scheduling pass.  Nothing from this
    epoch exists anywhere; recovery replays the epoch from scratch.
``post-solve``
    After the schedule is computed but before any volume is delivered.
    The solve's work is lost; recovery recomputes the same schedule
    (solves are deterministic for identical inputs).
``pre-commit``
    After the epoch executed (in-memory job state mutated) but before
    the journal append.  The journal still holds the *previous* epoch;
    recovery replays this one.
``post-commit``
    Right after the journal append.  Recovery continues from exactly
    the next epoch — the no-repeated-work case.
``mid-journal``
    During the journal append itself: the entry is written *torn*
    (truncated mid-line, via
    :meth:`~repro.recovery.journal.EpochJournal.append_torn`) before
    the crash, exercising the reader's corrupt-tail recovery.

The reservation service (:mod:`repro.service`) runs a different loop —
batch, decide, journal, respond — with its own meaningfully-distinct
death sites (:data:`SERVICE_CRASH_POINTS`):

``pre-batch``
    Before the tick touches anything.  Queued requests are still
    undecided; resume re-collects the same batch.
``post-solve``
    After decisions and the epoch schedule are computed but before the
    journal append.  All of the tick's work is lost and replayed.
``pre-respond``
    After the batch record is journaled but before any response is
    released.  The decisions are durable yet unseen — resume must
    surface them exactly once, not recompute them.
``post-journal``
    After responses are released (the tick fully committed).  Resume
    continues from the next tick with nothing repeated.

(The service's journal appends are atomic whole-file writes, so the
simulator's ``mid-journal`` torn-tail point covers the same failure
mode for both loops.)

The injector is one-shot: it fires the first time the run reaches its
``(point, epoch)`` and never again, so a resumed run sails past the
same spot.
"""

from __future__ import annotations

from ..errors import ReproError, ValidationError

__all__ = [
    "CRASH_POINTS",
    "SERVICE_CRASH_POINTS",
    "SimulatedCrash",
    "CrashInjector",
]

#: Every named controller-loop crash point, in loop order.
CRASH_POINTS = (
    "pre-solve",
    "post-solve",
    "pre-commit",
    "post-commit",
    "mid-journal",
)

#: Reservation-service tick crash points, in tick order.  ``post-solve``
#: is shared with :data:`CRASH_POINTS` (same meaning in both loops).
SERVICE_CRASH_POINTS = (
    "pre-batch",
    "post-solve",
    "pre-respond",
    "post-journal",
)

#: Every crash point any loop understands.
_ALL_POINTS = CRASH_POINTS + tuple(
    p for p in SERVICE_CRASH_POINTS if p not in CRASH_POINTS
)


class SimulatedCrash(ReproError, RuntimeError):
    """An injected controller death (stands in for ``kill -9``).

    Raised by :class:`CrashInjector` out of :meth:`Simulation.run
    <repro.sim.simulator.Simulation.run>`; deliberately *not* caught
    anywhere inside the simulator, exactly like a real crash.
    """

    def __init__(self, message: str, point: str, epoch: int) -> None:
        super().__init__(message)
        #: The :data:`CRASH_POINTS` name that fired.
        self.point = point
        #: Epoch index the run died in.
        self.epoch = epoch


class CrashInjector:
    """Kill the run at a named point of a chosen epoch, exactly once.

    Parameters
    ----------
    point:
        One of :data:`CRASH_POINTS` or :data:`SERVICE_CRASH_POINTS`.
    epoch:
        Epoch index (scheduling passes count from 0) to die in.
    """

    def __init__(self, point: str, epoch: int = 0) -> None:
        if point not in _ALL_POINTS:
            raise ValidationError(
                f"unknown crash point {point!r}; pick one of "
                f"{', '.join(_ALL_POINTS)}"
            )
        if int(epoch) != epoch or epoch < 0:
            raise ValidationError(
                f"crash epoch must be a non-negative integer, got {epoch!r}"
            )
        self.point = point
        self.epoch = int(epoch)
        #: Set once the injector has killed a run.
        self.fired = False

    def should_fire(self, point: str, epoch: int) -> bool:
        """Whether reaching ``(point, epoch)`` should crash the run."""
        return (
            not self.fired and point == self.point and epoch == self.epoch
        )

    def fire(self, point: str, epoch: int) -> None:
        """Mark the injector spent and raise :class:`SimulatedCrash`."""
        self.fired = True
        raise SimulatedCrash(
            f"injected controller crash at {point!r} in epoch {epoch}",
            point=point,
            epoch=epoch,
        )

    def __repr__(self) -> str:
        state = "fired" if self.fired else "armed"
        return f"CrashInjector({self.point!r}, epoch={self.epoch}, {state})"
