"""Write-ahead epoch journal: the controller's durable commit log.

The paper's controller (Section II-A) re-plans every unfinished job each
epoch, so all of its state is the per-job lifecycle bookkeeping plus the
loop cursor — exactly what :class:`EpochJournal` persists.  The format
is JSONL: one header line describing the immutable run inputs (network,
jobs, horizon, configuration, fault timeline), then one line per
committed epoch carrying the mutable state *after* that epoch executed.

Durability model
----------------

Every line is wrapped as ``{"v": 1, "crc": ..., "data": {...}}`` where
``crc`` is the CRC-32 of the canonical JSON encoding of ``data``.  Each
append rewrites the whole journal through a temp file (write, fsync,
rename, directory fsync), so a reader never observes a half-applied
append through the real path — the rename is atomic.  A *torn tail*
(the last line cut short or corrupted, as a mid-write crash would leave
behind) is still representable — :meth:`EpochJournal.append_torn`
deliberately produces one for crash testing — and
:func:`read_journal` recovers by dropping everything from the first
invalid line on, reporting ``truncated=True``.

Journals are small (state scales with job count, not horizon), so the
rewrite-whole-file strategy costs microseconds per epoch next to the
epoch's LP solves; ``benchmarks/bench_recovery_overhead.py`` holds this
under 10% of epoch wall time.

Append lock
-----------

Because appends rewrite the whole file, two writers interleaving on one
journal silently destroy each other's tails.  Opening a journal for
appending therefore takes an exclusive ``<path>.lock`` file holding the
owner's PID (written and fsynced before use).  A second opener from a
*different live process* raises
:class:`~repro.errors.JournalLockedError`; locks whose owner PID is
dead (a crashed controller) or is the opener's own process (the
in-process crash-test resume path) are stale and stolen.  The lock is
released by :meth:`EpochJournal.close` — which the simulator and the
reservation service call on normal completion — and otherwise expires
with its owning process.

Record kinds
------------

The simulator journals ``"epoch"`` records; the reservation service
journals ``"batch"`` records through the same machinery.  Writers pick
the kind per :meth:`EpochJournal.append`, readers declare the kind they
expect via ``read_journal(..., entry_kind=...)`` — a record of any
other kind truncates the replay there, exactly like a corrupt line.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..errors import (
    JournalError,
    JournalLockedError,
    JournalWriteError,
    ValidationError,
)

__all__ = [
    "SCHEMA_VERSION",
    "EpochJournal",
    "JournalReplay",
    "read_journal",
]

#: Journal schema version; readers reject anything newer than they know.
SCHEMA_VERSION = 1


def _canonical(data: dict) -> str:
    """Canonical JSON encoding: the byte string the CRC signs."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _wrap(data: dict) -> str:
    """One journal line for ``data``, CRC included."""
    payload = _canonical(data)
    crc = zlib.crc32(payload.encode("utf-8"))
    return _canonical({"v": SCHEMA_VERSION, "crc": crc, "data": data})


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _lock_path(path: Path) -> Path:
    return path.with_name(path.name + ".lock")


def _acquire_lock(path: Path) -> Path:
    """Take the journal's exclusive PID lock file, or raise.

    Creation is ``O_CREAT | O_EXCL`` so two racing openers cannot both
    win; the PID is fsynced before the lock counts as held.  Stale
    locks (dead owner, unreadable contents) and same-PID locks (an
    abandoned handle from an earlier, crashed run of *this* process)
    are stolen.
    """
    lock = _lock_path(path)
    me = os.getpid()
    for _ in range(3):
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            try:
                owner = int(lock.read_text().split()[0])
            except (OSError, ValueError, IndexError):
                owner = None  # unreadable or torn lock: stale
            if owner is not None and owner != me and _pid_alive(owner):
                raise JournalLockedError(
                    f"journal {path} is locked by live process {owner} "
                    f"(lock file {lock}); a second controller must not "
                    "interleave appends — resume there or wait for it "
                    "to finish",
                    owner_pid=owner,
                )
            try:
                lock.unlink()
            except FileNotFoundError:
                pass
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(f"{me}\n")
            fh.flush()
            os.fsync(fh.fileno())
        return lock
    raise JournalLockedError(
        f"journal {path}: lost the lock race at {lock} three times in a row"
    )


def _unwrap(line: str) -> dict | None:
    """Decode and CRC-check one line; ``None`` if torn or corrupt."""
    try:
        wrapper = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(wrapper, dict):
        return None
    data = wrapper.get("data")
    crc = wrapper.get("crc")
    if not isinstance(data, dict) or not isinstance(crc, int):
        return None
    if zlib.crc32(_canonical(data).encode("utf-8")) != crc:
        return None
    return data


@dataclass(frozen=True)
class JournalReplay:
    """Everything :func:`read_journal` recovered from disk.

    Attributes
    ----------
    header:
        The run's immutable inputs (``kind == "header"`` record).
    entries:
        Committed epoch records, in commit order.
    truncated:
        True when a torn or corrupt tail was dropped during recovery.
    """

    header: dict
    entries: tuple[dict, ...] = ()
    truncated: bool = False

    @property
    def last_entry(self) -> dict | None:
        """The most recent committed epoch state, or ``None``."""
        return self.entries[-1] if self.entries else None


def read_journal(path: str | Path, entry_kind: str = "epoch") -> JournalReplay:
    """Recover a journal from disk, tolerating a torn tail.

    ``entry_kind`` is the record kind the caller expects after the
    header (``"epoch"`` for simulator journals, ``"batch"`` for
    reservation-service journals); a record of any other kind counts as
    a corrupt tail and truncates the replay.

    Raises :class:`~repro.errors.JournalError` when the journal is
    unusable outright: missing file, empty file, invalid or wrong-kind
    first line, or an unsupported schema version.  Any invalid line
    *after* a valid header merely truncates the replay there.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise JournalError(f"no journal at {path}") from None
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None
    lines = text.splitlines()
    if not lines:
        raise JournalError(f"journal {path} is empty")
    header = _unwrap(lines[0])
    if header is None or header.get("kind") != "header":
        raise JournalError(
            f"journal {path} has no valid header line; it is not a journal "
            "or its header was corrupted beyond recovery"
        )
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise JournalError(
            f"journal {path} uses schema version {schema!r}; this reader "
            f"understands version {SCHEMA_VERSION}"
        )
    entries: list[dict] = []
    truncated = False
    for line in lines[1:]:
        data = _unwrap(line)
        if data is None or data.get("kind") != entry_kind:
            truncated = True
            break
        entries.append(data)
    return JournalReplay(
        header=header, entries=tuple(entries), truncated=truncated
    )


class EpochJournal:
    """Append-only epoch journal with whole-file atomic commits.

    Use :meth:`create` for a fresh run (writes the header immediately)
    or :meth:`open_existing` to continue one — the latter loads the
    valid prefix via :func:`read_journal`, so the first append after a
    torn-tail crash also heals the file.

    Both constructors take the exclusive append lock (module docstring);
    a second live process opening the same path raises
    :class:`~repro.errors.JournalLockedError`.  :meth:`close` releases
    the lock; an unclosed journal's lock dies with its process.
    """

    def __init__(
        self, path: str | Path, lines: list[str], entry_kind: str = "epoch"
    ) -> None:
        self.path = Path(path)
        self.entry_kind = entry_kind
        self._lines = lines
        self._lock = _acquire_lock(self.path)
        self._closed = False
        #: Optional chaos hook (see :mod:`repro.chaos.inject`): called as
        #: ``fault_injector(path, content)`` before every atomic replace.
        #: It may raise :class:`OSError` (surfaced as
        #: :class:`~repro.errors.JournalWriteError`) or return replacement
        #: content — typically a torn prefix — which is written to disk
        #: and *then* reported as a failed append (the bytes landed, the
        #: ack did not).  ``None`` in production.
        self.fault_injector = None

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str | Path, header: dict, entry_kind: str = "epoch"
    ) -> "EpochJournal":
        """Start a fresh journal at ``path``; commits the header line."""
        if not isinstance(header, dict):
            raise ValidationError("journal header must be a dict")
        record = dict(header)
        record["kind"] = "header"
        record["schema"] = SCHEMA_VERSION
        journal = cls(path, [_wrap(record)], entry_kind)
        journal._commit()
        return journal

    @classmethod
    def open_existing(
        cls, path: str | Path, entry_kind: str = "epoch"
    ) -> "EpochJournal":
        """Reopen a journal for appending, dropping any torn tail."""
        replay = read_journal(path, entry_kind=entry_kind)
        lines = [_wrap(replay.header)]
        lines.extend(_wrap(entry) for entry in replay.entries)
        return cls(path, lines, entry_kind)

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Committed epoch entries (the header does not count)."""
        return len(self._lines) - 1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released this handle."""
        return self._closed

    def close(self) -> None:
        """Release the append lock; further appends raise.

        Idempotent.  Only the normal-completion paths call this — a
        crashed run leaves its lock behind on purpose, and the stale
        rules in :func:`_acquire_lock` let the resume steal it.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._lock.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "EpochJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise JournalError(
                f"journal {self.path} is closed; reopen it with "
                "EpochJournal.open_existing to append again"
            )

    def append(self, entry: dict) -> None:
        """Durably commit one record (of this journal's entry kind).

        On a failed replace (:class:`~repro.errors.JournalWriteError`)
        the in-memory line list is rolled back before re-raising: the
        entry was never committed, and the next successful append must
        not resurrect it.
        """
        if not isinstance(entry, dict):
            raise ValidationError("journal entry must be a dict")
        self._check_open()
        record = dict(entry)
        record["kind"] = self.entry_kind
        self._lines.append(_wrap(record))
        try:
            self._commit()
        except JournalWriteError:
            self._lines.pop()
            raise

    def append_torn(self, entry: dict) -> None:
        """Commit a *deliberately torn* version of ``entry``.

        Writes the valid prefix plus roughly half of the new line's
        bytes with no trailing newline — the on-disk shape a crash in
        the middle of a (non-atomic) append would leave.  Used by the
        ``mid-journal`` crash point; :func:`read_journal` recovers to
        the last valid record.  The in-memory line list is *not*
        extended: the entry was never committed.
        """
        if not isinstance(entry, dict):
            raise ValidationError("journal entry must be a dict")
        self._check_open()
        record = dict(entry)
        record["kind"] = self.entry_kind
        line = _wrap(record)
        torn = line[: max(1, len(line) // 2)]
        content = "".join(f"{ln}\n" for ln in self._lines) + torn
        self._atomic_replace(content)

    # ------------------------------------------------------------------
    def _commit(self) -> None:
        self._atomic_replace("".join(f"{ln}\n" for ln in self._lines))

    def _atomic_replace(self, content: str) -> None:
        """Atomic whole-file replace: tmp + fsync + rename + dir fsync.

        A mid-write :class:`OSError` (disk full, I/O error, a fault
        injected by ``self.fault_injector``) is re-raised as a typed
        :class:`~repro.errors.JournalWriteError` after removing the temp
        file — the real path was replaced atomically or not at all, so
        the prior journal is intact either way.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        torn = None
        try:
            if self.fault_injector is not None:
                torn = self.fault_injector(self.path, content)
                if torn is not None:
                    content = torn
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(content)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise JournalWriteError(
                f"journal {self.path}: append could not be made durable "
                f"({exc}); the last durable commit is still on disk",
                path=str(self.path),
            ) from exc
        if torn is not None:
            raise JournalWriteError(
                f"journal {self.path}: injected torn write — partial bytes "
                "reached disk but the append was never acknowledged",
                path=str(self.path),
            )
        try:
            dir_fd = os.open(self.path.parent or Path("."), os.O_RDONLY)
        except OSError:
            return  # platform without directory opening; rename is done
        try:
            os.fsync(dir_fd)
        except OSError:
            pass  # some filesystems refuse directory fsync; best effort
        finally:
            os.close(dir_fd)

    def __repr__(self) -> str:
        return f"EpochJournal({str(self.path)!r}, entries={self.num_entries})"
