"""Controller durability: epoch journaling, crash-recovery, budgets.

The paper's periodic controller holds its entire schedule state in
memory and re-derives it every epoch — so a crash loses everything, and
a slow solve blows through the epoch boundary it plans for.  This
package makes the controller durable and deadline-aware:

* :class:`EpochJournal` / :func:`read_journal` — a write-ahead JSONL
  commit log of per-epoch controller state, with CRC-protected lines,
  atomic whole-file commits and torn-tail recovery;
* :class:`CrashInjector` / :class:`SimulatedCrash` — deterministic
  process-death injection at named points of the epoch loop
  (:data:`CRASH_POINTS`), so recovery is testable the way
  :mod:`repro.faults` makes link failures testable;
* :class:`SolveBudget` (re-exported from :mod:`repro.lp.solver`) — the
  cooperative wall-clock watchdog whose exhaustion triggers the
  scheduler's graceful-degradation ladder instead of an exception.

Wired into :class:`repro.sim.simulator.Simulation` via ``journal=``,
``crash_injector=`` and ``solve_budget=``, and
``Simulation.resume(path)`` for the recovery side.  See
``docs/recovery.md`` for the journal format and semantics.
"""

from ..lp.solver import SolveBudget
from .crash import (
    CRASH_POINTS,
    SERVICE_CRASH_POINTS,
    CrashInjector,
    SimulatedCrash,
)
from .journal import SCHEMA_VERSION, EpochJournal, JournalReplay, read_journal

__all__ = [
    "SCHEMA_VERSION",
    "EpochJournal",
    "JournalReplay",
    "read_journal",
    "CRASH_POINTS",
    "SERVICE_CRASH_POINTS",
    "CrashInjector",
    "SimulatedCrash",
    "SolveBudget",
]
