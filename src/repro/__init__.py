"""Slotted wavelength scheduling for bulk transfers in research networks.

A full reproduction of Wang, Ranka & Xia, *Slotted Wavelength Scheduling
for Bulk Transfers in Research Networks* (ICPP 2009): time-constrained
bulk-transfer scheduling on wavelength-switched optical networks, built
around the LPDAR heuristic for integer wavelength assignment.

Quick tour
----------

>>> from repro import Scheduler, Job, JobSet, topologies
>>> net = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)
>>> jobs = JobSet([
...     Job(id="hep", source="Chicago", dest="Sunnyvale",
...         size=120.0, start=0.0, end=4.0),
... ])
>>> result = Scheduler(net).schedule(jobs)
>>> result.zstar > 1.0  # underloaded: the request fits with room to spare
True

The three top-level entry points are:

* :class:`~repro.core.scheduler.Scheduler` — the maximizing-throughput
  algorithm (stage 1 + stage 2 + LPDAR),
* :func:`~repro.core.ret.solve_ret` — the Relaxing-End-Times algorithm
  (Algorithm 2),
* :class:`~repro.sim.simulator.Simulation` — the periodic AC/scheduling
  controller loop.
"""

from . import analysis, chaos, control, core, engine, experiments, faults, lp, network, obs, parallel, recovery, service, sim, verify, workload
from . import serialization
from .analysis import ResilienceReport, resilience_report
from .chaos import (
    ChaosReport,
    ChaosSchedule,
    FaultyBackend,
    JournalFaultInjector,
    MonitorViolation,
    generate_chaos,
    parse_chaos_spec,
    run_chaos,
)
from .control import (
    AlphaBanditPolicy,
    ControlPolicy,
    EpochAction,
    EpochKernel,
    EpochObservation,
    EpochOutcome,
    FixedPolicy,
    LoadReactivePathsPolicy,
    POLICY_NAMES,
    PolicyComparison,
    PolicyRunResult,
    SchedulingEnv,
    compare_policies,
    make_policy,
)
from .engine import (
    HighsBackend,
    ModelEngine,
    SimplexBackend,
    SolverBackend,
    TopologyLayer,
    LayoutLayer,
    WarmStart,
    available_backends,
    build_structure,
    get_backend,
    register_backend,
)
from .core import (
    AdmissionDecision,
    NegotiationSession,
    BaselineResult,
    admit_greedy,
    average_rate_reservation,
    malleable_reservation,
    LpdarResult,
    RetResult,
    ScheduleResult,
    Scheduler,
    Stage1Result,
    Stage2Result,
    WavelengthGrant,
    admit_max_prefix,
    average_end_time,
    completion_slices,
    discretize,
    fraction_finished,
    greedy_adjust,
    lpdar,
    realize_schedule,
    solve_ret,
    solve_stage1,
    solve_stage2_exact,
    solve_stage2_lp,
    solve_subret_exact,
    solve_subret_lp,
)
from .errors import (
    BudgetExceededError,
    InfeasibleProblemError,
    JournalError,
    JournalLockedError,
    JournalWriteError,
    ReproError,
    ScheduleError,
    SolverError,
    UnboundedProblemError,
    ValidationError,
)
from .faults import (
    FaultSchedule,
    LinkDown,
    LinkUp,
    WavelengthDegrade,
    parse_fault_spec,
)
from .lp import (
    DEFAULT_RESILIENCE,
    LinearProgram,
    LPSolution,
    ProblemStructure,
    SolveResilience,
    solve_lp,
    solve_milp,
)
from .obs import NULL_TELEMETRY, NullTelemetry, Telemetry
from .parallel import (
    Shard,
    ShardedScheduler,
    TaskResult,
    TaskSpec,
    partition_structure,
    register_task,
    run_fleet,
)
from .network import (
    CapacityProfile,
    Edge,
    Network,
    Path,
    abilene,
    edge_disjoint_paths,
    k_shortest_paths,
    shortest_path,
    waxman_network,
)
from .network import topologies
from .recovery import (
    CRASH_POINTS,
    SERVICE_CRASH_POINTS,
    CrashInjector,
    EpochJournal,
    JournalReplay,
    SCHEMA_VERSION,
    SimulatedCrash,
    SolveBudget,
    read_journal,
)
from .service import (
    Accepted,
    ClosedLoopDriver,
    CommitmentBook,
    Decision,
    DecisionHandle,
    Negotiated,
    Rejected,
    Reservation,
    ReservationRequest,
    ReservationService,
    ServiceStats,
    parse_request,
)
from .sim import Simulation, SimulationResult, SimulationSummary, summarize
from .timegrid import TimeGrid
from .verify import (
    VerificationReport,
    Violation,
    verify_assignment,
    verify_grants,
    verify_schedule,
)
from .workload import (
    Job,
    JobSet,
    WorkloadConfig,
    WorkloadGenerator,
    climate_ensemble_trace,
    hep_tier_trace,
    mixed_escience_trace,
)

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "analysis",
    "chaos",
    "control",
    "core",
    "engine",
    "experiments",
    "faults",
    "lp",
    "network",
    "obs",
    "parallel",
    "recovery",
    "service",
    "sim",
    "verify",
    "workload",
    "topologies",
    # network substrate
    "Network",
    "Edge",
    "Path",
    "abilene",
    "waxman_network",
    "shortest_path",
    "k_shortest_paths",
    "edge_disjoint_paths",
    # time and jobs
    "TimeGrid",
    "Job",
    "JobSet",
    "WorkloadConfig",
    "WorkloadGenerator",
    "hep_tier_trace",
    "climate_ensemble_trace",
    "mixed_escience_trace",
    # LP layer
    "ProblemStructure",
    "LinearProgram",
    "LPSolution",
    "SolveResilience",
    "DEFAULT_RESILIENCE",
    "solve_lp",
    "solve_milp",
    # model engine and solver-backend registry
    "ModelEngine",
    "build_structure",
    "TopologyLayer",
    "LayoutLayer",
    "SolverBackend",
    "WarmStart",
    "HighsBackend",
    "SimplexBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    # observability
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    # core algorithms
    "Scheduler",
    "ScheduleResult",
    "WavelengthGrant",
    "Stage1Result",
    "Stage2Result",
    "LpdarResult",
    "RetResult",
    "solve_stage1",
    "solve_stage2_lp",
    "solve_stage2_exact",
    "solve_subret_lp",
    "solve_subret_exact",
    "solve_ret",
    "lpdar",
    "realize_schedule",
    "NegotiationSession",
    "discretize",
    "greedy_adjust",
    "admit_max_prefix",
    "admit_greedy",
    "AdmissionDecision",
    "BaselineResult",
    "malleable_reservation",
    "average_rate_reservation",
    "CapacityProfile",
    "serialization",
    "fraction_finished",
    "average_end_time",
    "completion_slices",
    # simulator
    "Simulation",
    "SimulationResult",
    "SimulationSummary",
    "summarize",
    # durability: journaling, crash-recovery, solve budgets
    "SCHEMA_VERSION",
    "EpochJournal",
    "JournalReplay",
    "read_journal",
    "CRASH_POINTS",
    "SERVICE_CRASH_POINTS",
    "CrashInjector",
    "SimulatedCrash",
    "SolveBudget",
    # reservation service
    "ReservationService",
    "ReservationRequest",
    "Decision",
    "DecisionHandle",
    "Accepted",
    "Rejected",
    "Negotiated",
    "parse_request",
    "CommitmentBook",
    "Reservation",
    "ServiceStats",
    "ClosedLoopDriver",
    # parallel execution: fleet mode and decomposed solves
    "TaskSpec",
    "TaskResult",
    "register_task",
    "run_fleet",
    "Shard",
    "partition_structure",
    "ShardedScheduler",
    # verification
    "Violation",
    "VerificationReport",
    "verify_schedule",
    "verify_assignment",
    "verify_grants",
    # fault injection and resilience
    "FaultSchedule",
    "LinkDown",
    "LinkUp",
    "WavelengthDegrade",
    "parse_fault_spec",
    "ResilienceReport",
    "resilience_report",
    # epoch-control kernel and policy surface
    "EpochKernel",
    "EpochAction",
    "EpochObservation",
    "EpochOutcome",
    "ControlPolicy",
    "FixedPolicy",
    "AlphaBanditPolicy",
    "LoadReactivePathsPolicy",
    "POLICY_NAMES",
    "make_policy",
    "SchedulingEnv",
    "PolicyRunResult",
    "PolicyComparison",
    "compare_policies",
    # chaos engine
    "ChaosSchedule",
    "ChaosReport",
    "FaultyBackend",
    "JournalFaultInjector",
    "MonitorViolation",
    "generate_chaos",
    "parse_chaos_spec",
    "run_chaos",
    # errors
    "ReproError",
    "ValidationError",
    "SolverError",
    "InfeasibleProblemError",
    "UnboundedProblemError",
    "ScheduleError",
    "BudgetExceededError",
    "JournalError",
    "JournalLockedError",
    "JournalWriteError",
    "__version__",
]
