"""Congestion pricing: where would one more wavelength help most?

A by-product of the optimization-based paradigm the paper advocates:
the dual values (shadow prices) of the capacity constraints (3) price
every (edge, slice) cell by how much the weighted throughput would rise
if that cell had one more wavelength.  Network operators read this as a
capacity-planning signal — the paper's framework computes it for free
with every scheduling pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

import numpy as np

from ..core.stage2 import build_stage2_lp
from ..errors import SolverError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import solve_lp

__all__ = ["CongestionReport", "congestion_report"]

Node = Hashable


@dataclass(frozen=True)
class CongestionReport:
    """Shadow prices of the capacity constraints of one stage-2 solve.

    Attributes
    ----------
    structure:
        The problem the prices belong to.
    prices:
        Dense ``(num_edges, num_slices)`` matrix: marginal weighted-
        throughput gain per extra wavelength on that (edge, slice).
        Zero on cells whose constraint is slack (or unused).
    objective:
        The stage-2 LP optimum the prices are taken at.
    """

    structure: ProblemStructure
    prices: np.ndarray
    objective: float

    def edge_prices(self) -> np.ndarray:
        """Per-edge total price across all slices (capacity-planning rank)."""
        return self.prices.sum(axis=1)

    def bottlenecks(self, top: int = 5) -> list[tuple[Node, Node, float]]:
        """The ``top`` priciest edges as ``(source, target, price)``.

        Only edges with a strictly positive price are returned, so the
        list may be shorter than ``top`` (empty on an uncongested
        network).
        """
        if top < 1:
            raise ValidationError(f"top must be >= 1, got {top}")
        totals = self.edge_prices()
        order = np.argsort(-totals)[:top]
        out = []
        for eid in order:
            if totals[eid] <= 1e-12:
                break
            edge = self.structure.network.edge(int(eid))
            out.append((edge.source, edge.target, float(totals[eid])))
        return out

    def congested_fraction(self, tol: float = 1e-9) -> float:
        """Share of constrained (edge, slice) cells with a positive price."""
        row_prices = self.prices[
            self.structure.cap_row_edge, self.structure.cap_row_slice
        ]
        if row_prices.size == 0:
            return 0.0
        return float(np.mean(row_prices > tol))


def congestion_report(
    structure: ProblemStructure,
    zstar: float,
    alpha: float = 0.1,
    weights: np.ndarray | None = None,
) -> CongestionReport:
    """Solve the stage-2 LP and extract capacity shadow prices.

    The LP's inequality block stacks the capacity rows first, then the
    fairness rows; only the capacity duals are exposed here.
    """
    lp = build_stage2_lp(structure, zstar, alpha, weights)
    solution = solve_lp(lp)
    if solution.ineq_duals is None:  # pragma: no cover - HiGHS always reports
        raise SolverError("backend returned no dual values")
    num_cap_rows = structure.capacity_matrix.shape[0]
    cap_duals = solution.ineq_duals[:num_cap_rows]
    prices = np.zeros(
        (structure.network.num_edges, structure.grid.num_slices)
    )
    prices[structure.cap_row_edge, structure.cap_row_slice] = np.maximum(
        cap_duals, 0.0
    )
    return CongestionReport(
        structure=structure, prices=prices, objective=solution.objective
    )
