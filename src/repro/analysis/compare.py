"""Side-by-side comparison tables for schedules and simulation runs.

Turns a labelled collection of results into one table with algorithms /
configurations as columns — the format every "which knob should I turn"
question wants.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.metrics import jains_fairness_index, mean_link_utilization
from ..core.scheduler import ScheduleResult
from ..errors import ValidationError
from ..sim.metrics import SimulationSummary
from .reporting import Table

__all__ = ["compare_schedules", "compare_simulations"]


def compare_schedules(
    results: Mapping[str, ScheduleResult], title: str = "schedule comparison"
) -> Table:
    """One column per labelled :class:`ScheduleResult`, one row per metric.

    All results should describe the *same* request set for the numbers
    to be comparable (this is not checked — labels are free-form).
    """
    if not results:
        raise ValidationError("nothing to compare")
    labels = list(results)
    table = Table(["metric", *labels], title=title)

    def row(name, fn, digits=4):
        table.add_row([name, *(round(fn(results[l]), digits) for l in labels)])

    row("Z* (stage 1)", lambda r: r.zstar)
    row("weighted throughput (LPDAR)", lambda r: r.weighted_throughput("lpdar"))
    row("LPDAR / LP ratio", lambda r: r.normalized_throughput("lpdar"))
    row("LPD / LP ratio", lambda r: r.normalized_throughput("lpd"))
    row("jobs fully served", lambda r: r.fraction_finished("lpdar"))
    row(
        "Jain fairness of Z_i",
        lambda r: jains_fairness_index(r.job_throughputs("lpdar")),
    )
    row(
        "mean link utilization",
        lambda r: mean_link_utilization(r.structure, r.x),
    )
    table.add_row(
        ["alpha used", *(results[l].alpha for l in labels)]
    )
    return table


def compare_simulations(
    summaries: Mapping[str, SimulationSummary],
    title: str = "simulation comparison",
) -> Table:
    """One column per labelled :class:`SimulationSummary`."""
    if not summaries:
        raise ValidationError("nothing to compare")
    labels = list(summaries)
    table = Table(["metric", *labels], title=title)
    for name in (
        "num_jobs",
        "num_completed",
        "num_rejected",
        "num_expired",
        "acceptance_rate",
        "completion_rate",
        "deadline_rate",
        "delivered_volume",
        "mean_response_time",
        "mean_lateness",
        "mean_utilization",
        "mean_zstar",
    ):
        values = []
        for label in labels:
            value = getattr(summaries[label], name)
            values.append(round(value, 4) if isinstance(value, float) else value)
        table.add_row([name, *values])
    return table
