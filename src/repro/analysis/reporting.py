"""Plain-text tables for benchmark and example output.

The benchmark harness prints the same rows/series the paper's figures
plot; this module renders them as aligned ASCII tables so the comparison
with the paper is readable straight from the terminal (and from
``bench_output.txt``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import ValidationError

__all__ = ["Table", "format_value"]


def format_value(value, precision: int = 4) -> str:
    """Render one cell: floats to ``precision`` significant places."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:.{precision}g}"
    return str(value)


class Table:
    """An append-only table rendered with aligned columns.

    Examples
    --------
    >>> t = Table(["W", "LPD/LP", "LPDAR/LP"], title="Fig. 1")
    >>> t.add_row([2, 0.52, 0.91])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValidationError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable) -> None:
        """Append a row; must match the column count."""
        row = [format_value(v) for v in values]
        if len(row) != len(self.columns):
            raise ValidationError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as a string, columns right-aligned."""
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in self.rows))
            if self.rows
            else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            name.rjust(widths[c]) for c, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        """Render to stdout, framed by blank lines (pytest -s friendly)."""
        print()
        print(self.render())
        print()

    def to_markdown(self) -> str:
        """The table as GitHub-flavoured markdown (for reports/READMEs)."""
        def esc(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(esc(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(esc(c) for c in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV text (title omitted; header + rows)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()
