"""One-call textual report for a scheduling outcome.

:func:`describe_schedule` combines the headline numbers, fairness,
multipath/time-variation statistics, congestion hot spots and the Gantt
views into one operator-readable string — what a controller would log
after each scheduling pass.
"""

from __future__ import annotations

from ..core.metrics import jains_fairness_index
from ..core.scheduler import ScheduleResult
from .congestion import congestion_report
from .gantt import job_gantt, link_gantt
from .reporting import Table
from .stats import schedule_statistics

__all__ = ["describe_schedule"]


def describe_schedule(
    result: ScheduleResult,
    gantt: bool = True,
    max_jobs: int = 20,
    max_links: int = 12,
    bottlenecks: int = 5,
) -> str:
    """Render a full text report of one scheduling pass.

    Parameters
    ----------
    result:
        The outcome of :meth:`~repro.core.scheduler.Scheduler.schedule`.
    gantt:
        Include the per-job and per-link timelines.
    max_jobs, max_links:
        Row caps for the timelines.
    bottlenecks:
        How many congestion-priced links to list (0 skips the extra LP
        solve entirely).
    """
    structure = result.structure
    z = result.job_throughputs("lpdar")
    stats = schedule_statistics(structure, result.x)

    head = Table(["metric", "value"], title="scheduling pass")
    head.add_row(["jobs", len(structure.jobs)])
    head.add_row(["Z* (stage 1)", round(result.zstar, 4)])
    head.add_row(["overloaded (Z* <= 1)", result.overloaded])
    head.add_row(["alpha used", result.alpha])
    head.add_row(["alpha escalations", result.alpha_escalations])
    head.add_row(
        ["weighted throughput (LPDAR)", round(result.weighted_throughput(), 4)]
    )
    head.add_row(
        ["LPDAR / LP ratio", round(result.normalized_throughput("lpdar"), 4)]
    )
    head.add_row(["fairness floor met", result.meets_fairness("lpdar")])
    head.add_row(
        ["Jain fairness of Z_i", round(jains_fairness_index(z), 4)]
    )
    head.add_row(["jobs fully served", round(result.fraction_finished(), 4)])

    shape = Table(["metric", "value"], title="schedule shape")
    shape.add_row(["jobs served", stats.num_jobs_served])
    shape.add_row(["mean paths used / job", round(stats.mean_paths_used, 3)])
    shape.add_row(
        ["concurrent-multipath jobs", f"{stats.multipath_job_fraction:.0%}"]
    )
    shape.add_row(
        ["time-varying-rate jobs", f"{stats.time_varying_job_fraction:.0%}"]
    )
    shape.add_row(
        ["active share of window", f"{stats.active_slice_fraction:.0%}"]
    )

    parts = [head.render(), "", shape.render()]

    if bottlenecks > 0:
        report = congestion_report(structure, result.zstar, result.alpha)
        hot = report.bottlenecks(top=bottlenecks)
        if hot:
            table = Table(
                ["link", "shadow price"],
                title="congestion hot spots (marginal throughput per wavelength)",
            )
            for source, target, price in hot:
                table.add_row([f"{source} -> {target}", round(price, 5)])
            parts += ["", table.render()]
        else:
            parts += ["", "no congested links (all capacity prices zero)"]

    if gantt:
        parts += [
            "",
            "per-job wavelengths (columns = slices):",
            job_gantt(structure, result.x, max_jobs=max_jobs),
            "",
            "busiest links ('*' = saturated):",
            link_gantt(structure, result.x, max_links=max_links),
        ]
    return "\n".join(parts)
