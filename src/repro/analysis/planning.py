"""Capacity planning from congestion prices: where to add wavelengths.

The optimization-based controller prices every (link, slice) cell via
the duals of the capacity constraint (3) — see
:mod:`repro.analysis.congestion`.  This module turns those prices into
an upgrade plan: greedily add whole wavelengths to the priciest links,
re-solving after each upgrade (prices change as bottlenecks move), until
a budget is exhausted or the network stops being the binding constraint.

This is the natural operator workflow the paper's framework enables but
does not spell out: the same LP that schedules tonight's transfers also
says which fiber to light next quarter.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

import numpy as np

from ..core.stage2 import solve_stage2_lp
from ..core.throughput import solve_stage1
from ..errors import ValidationError
from ..engine import build_structure
from ..network.graph import Network
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .congestion import congestion_report

__all__ = ["UpgradeStep", "UpgradePlan", "plan_upgrades"]

Node = Hashable


@dataclass(frozen=True)
class UpgradeStep:
    """One wavelength added to one link pair.

    Attributes
    ----------
    source, target:
        The upgraded link (both directions gain a wavelength).
    price:
        The shadow price that motivated the upgrade (marginal weighted
        throughput per wavelength-slice at decision time).
    zstar_after, throughput_after:
        Stage-1 ``Z*`` and the stage-2 LP objective after the upgrade.
    """

    source: Node
    target: Node
    price: float
    zstar_after: float
    throughput_after: float


@dataclass(frozen=True)
class UpgradePlan:
    """A sequence of greedy wavelength upgrades and their effect.

    Attributes
    ----------
    steps:
        Upgrades in the order taken.
    zstar_before, throughput_before:
        Baseline metrics on the original network.
    network:
        The upgraded network (a copy; the input is untouched).
    """

    steps: tuple[UpgradeStep, ...]
    zstar_before: float
    throughput_before: float
    network: Network

    @property
    def num_upgrades(self) -> int:
        return len(self.steps)

    @property
    def zstar_after(self) -> float:
        return self.steps[-1].zstar_after if self.steps else self.zstar_before

    @property
    def throughput_after(self) -> float:
        return (
            self.steps[-1].throughput_after
            if self.steps
            else self.throughput_before
        )

    def throughput_gain(self) -> float:
        """Relative stage-2 objective improvement over the baseline.

        Note: individual steps need not improve monotonically — adding
        capacity raises ``Z*``, which *tightens* the fairness floor
        ``(1 - alpha) Z*`` and can transiently lower the fairness-
        constrained objective.  The planner optimizes the end state.
        """
        if self.throughput_before <= 0:
            return float("nan")
        return self.throughput_after / self.throughput_before - 1.0


def plan_upgrades(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid | None = None,
    budget: int = 4,
    k_paths: int = 4,
    alpha: float = 0.1,
    min_price: float = 1e-6,
) -> UpgradePlan:
    """Greedy wavelength-upgrade plan for a representative workload.

    Parameters
    ----------
    network:
        The current network (not modified; the plan carries a copy).
    jobs:
        A representative demand set to plan against.
    grid:
        Scheduling grid (default: unit slices covering the jobs).
    budget:
        Maximum number of single-wavelength link-pair upgrades.
    k_paths, alpha:
        Scheduling parameters used for the evaluation solves.
    min_price:
        Stop early once the priciest link's total shadow price falls to
        this level — further capacity would be idle.
    """
    if budget < 1:
        raise ValidationError(f"budget must be >= 1, got {budget}")
    if grid is None:
        grid = TimeGrid.covering(jobs.max_end())

    current = network.copy()

    def evaluate(net: Network):
        structure = build_structure(net, jobs, grid, k_paths)
        zstar = solve_stage1(structure).zstar
        stage2 = solve_stage2_lp(structure, zstar, alpha)
        return structure, zstar, stage2.objective

    structure, zstar0, throughput0 = evaluate(current)
    steps: list[UpgradeStep] = []
    for _ in range(budget):
        report = congestion_report(structure, solve_stage1(structure).zstar, alpha)
        hot = report.bottlenecks(top=1)
        if not hot or hot[0][2] < min_price:
            break
        source, target, price = hot[0]
        upgraded = Network(
            wavelength_rate=current.wavelength_rate, name=current.name
        )
        for node in current.nodes:
            upgraded.add_node(node)
        for e in current.edges:
            bump = (e.source, e.target) in ((source, target), (target, source))
            upgraded.add_edge(
                e.source, e.target, e.capacity + (1 if bump else 0), e.weight
            )
        current = upgraded
        structure, zstar, throughput = evaluate(current)
        steps.append(
            UpgradeStep(
                source=source,
                target=target,
                price=price,
                zstar_after=zstar,
                throughput_after=throughput,
            )
        )
    return UpgradePlan(
        steps=tuple(steps),
        zstar_before=zstar0,
        throughput_before=throughput0,
        network=current,
    )
