"""Reporting and analysis helpers: tables, Gantt charts, congestion prices."""

from .churn import ChurnReport, reconfiguration_churn
from .compare import compare_schedules, compare_simulations
from .congestion import CongestionReport, congestion_report
from .gantt import job_gantt, link_gantt
from .planning import UpgradePlan, UpgradeStep, plan_upgrades
from .reporting import Table, format_value
from .resilience import ResilienceReport, resilience_report
from .stats import ScheduleStatistics, schedule_statistics
from .summary import describe_schedule

__all__ = [
    "Table",
    "format_value",
    "job_gantt",
    "link_gantt",
    "CongestionReport",
    "congestion_report",
    "ScheduleStatistics",
    "schedule_statistics",
    "describe_schedule",
    "UpgradePlan",
    "UpgradeStep",
    "plan_upgrades",
    "ChurnReport",
    "reconfiguration_churn",
    "ResilienceReport",
    "resilience_report",
    "compare_schedules",
    "compare_simulations",
]
