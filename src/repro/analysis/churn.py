"""Reconfiguration churn: how much does a re-optimized schedule move?

The paper's framework re-optimizes *all* jobs every period, which buys
efficiency but re-writes switch state; operators also care how much of
the previous configuration survives (the rerouting-cost concern of the
related work it cites, e.g. Burchard et al. on rerouting strategies).

:func:`reconfiguration_churn` compares two schedules on their common
footing — same job, same path (by node sequence), same absolute time
slice — and reports how many wavelength-units moved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import ScheduleResult
from ..errors import ValidationError

__all__ = ["ChurnReport", "reconfiguration_churn"]


@dataclass(frozen=True)
class ChurnReport:
    """Grant-level difference between two schedules.

    All quantities are in wavelength-slice units over the *overlapping*
    absolute time range of the two schedules.

    Attributes
    ----------
    kept:
        Wavelength-units present in both schedules on the same
        (job, path, slice).
    removed:
        Units the old schedule had that the new one dropped.
    added:
        Units the new schedule has that the old one lacked.
    """

    kept: float
    removed: float
    added: float

    @property
    def old_total(self) -> float:
        return self.kept + self.removed

    @property
    def new_total(self) -> float:
        return self.kept + self.added

    @property
    def churn_fraction(self) -> float:
        """Share of the old configuration that was torn down (0 = stable)."""
        if self.old_total == 0:
            return float("nan")
        return self.removed / self.old_total

    @property
    def retention(self) -> float:
        """Share of the old configuration that survived."""
        if self.old_total == 0:
            return float("nan")
        return self.kept / self.old_total


def _grant_map(result: ScheduleResult, which: str) -> dict[tuple, int]:
    grants: dict[tuple, int] = {}
    for grant in result.grants(which):
        # Key by absolute slice *time*, so schedules built over different
        # grids (e.g. successive controller epochs) still align.
        key = (grant.job_id, grant.path, grant.interval[0])
        grants[key] = grants.get(key, 0) + grant.wavelengths
    return grants


def reconfiguration_churn(
    old: ScheduleResult,
    new: ScheduleResult,
    which: str = "lpdar",
) -> ChurnReport:
    """Compare two schedules' wavelength grants on their overlapping time.

    Only grants whose slice start lies in both schedules' time ranges
    are compared; grants outside the overlap are ignored (they are not
    reconfigurations, just horizon differences).
    """
    overlap_start = max(old.structure.grid.start, new.structure.grid.start)
    overlap_end = min(old.structure.grid.end, new.structure.grid.end)
    if overlap_end <= overlap_start:
        raise ValidationError(
            "schedules do not overlap in time; nothing to compare"
        )

    def in_overlap(key: tuple) -> bool:
        return overlap_start - 1e-9 <= key[2] < overlap_end - 1e-9

    old_grants = {k: v for k, v in _grant_map(old, which).items() if in_overlap(k)}
    new_grants = {k: v for k, v in _grant_map(new, which).items() if in_overlap(k)}

    kept = removed = added = 0.0
    for key, count in old_grants.items():
        other = new_grants.get(key, 0)
        kept += min(count, other)
        removed += max(count - other, 0)
    for key, count in new_grants.items():
        added += max(count - old_grants.get(key, 0), 0)
    return ChurnReport(kept=kept, removed=removed, added=added)
