"""ASCII Gantt views of a wavelength schedule.

Terminal-friendly renderings of an assignment: one row per job (or per
link), one column per time slice, each cell showing the wavelength count
active on that slice.  Used by the examples and handy in a REPL:

>>> print(job_gantt(result.structure, result.x))   # doctest: +SKIP
job      0123456789
hep-42   44442.....
clim-7   ..4444....
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import per_slice_delivery
from ..errors import ValidationError
from ..lp.model import ProblemStructure

__all__ = ["job_gantt", "link_gantt"]


def _cell(count: float) -> str:
    """One character for a wavelength count: . 1-9 then # for >= 10."""
    if count <= 0:
        return "."
    if count < 10:
        return str(int(round(count)))
    return "#"


def job_gantt(
    structure: ProblemStructure,
    x: np.ndarray,
    max_jobs: int | None = None,
) -> str:
    """Per-job timeline of total wavelengths held on each slice.

    Each row is a job; each column a slice; the cell shows the job's
    wavelength count summed over its paths (``.`` = idle).  An ``|`` is
    appended where the job's allowed window ends.
    """
    x = np.asarray(x, dtype=float)
    num_jobs = len(structure.jobs)
    shown = num_jobs if max_jobs is None else min(max_jobs, num_jobs)
    if shown < 1:
        raise ValidationError("max_jobs must be >= 1")

    # Wavelength counts per (job, slice): delivery divided by LEN.
    delivery = per_slice_delivery(structure, x)
    counts = delivery / structure.grid.lengths[None, :]

    labels = [str(structure.jobs[i].id) for i in range(shown)]
    label_width = max(len("job"), *(len(s) for s in labels))
    header = "job".ljust(label_width) + "  " + _slice_ruler(structure.grid.num_slices)
    lines = [header]
    for i in range(shown):
        cells = "".join(_cell(counts[i, j]) for j in range(structure.grid.num_slices))
        lines.append(labels[i].ljust(label_width) + "  " + cells)
    if shown < num_jobs:
        lines.append(f"... ({num_jobs - shown} more jobs)")
    return "\n".join(lines)


def link_gantt(
    structure: ProblemStructure,
    x: np.ndarray,
    max_links: int | None = None,
    only_loaded: bool = True,
) -> str:
    """Per-link timeline of wavelength load vs capacity.

    Cells show the load count (``.`` = idle); a cell is capitalized to
    ``*`` when the link is saturated on that slice.  Links are ordered
    by total load, heaviest first.
    """
    x = np.asarray(x, dtype=float)
    loads = structure.link_loads(x)
    caps = structure.capacity_grid()
    totals = loads.sum(axis=1)
    order = np.argsort(-totals)
    if only_loaded:
        order = [e for e in order if totals[e] > 0]
    if max_links is not None:
        if max_links < 1:
            raise ValidationError("max_links must be >= 1")
        order = list(order)[:max_links]

    labels = [
        f"{structure.network.edge(int(e)).source!r}->"
        f"{structure.network.edge(int(e)).target!r}"
        for e in order
    ]
    label_width = max(len("link"), *(len(s) for s in labels)) if labels else len("link")
    lines = [
        "link".ljust(label_width) + "  " + _slice_ruler(structure.grid.num_slices)
    ]
    for label, e in zip(labels, order):
        cells = "".join(
            "*"
            if 0 < caps[e, j] <= loads[e, j]
            else _cell(loads[e, j])
            for j in range(structure.grid.num_slices)
        )
        lines.append(label.ljust(label_width) + "  " + cells)
    if not order:
        lines.append("(no loaded links)")
    return "\n".join(lines)


def _slice_ruler(num_slices: int) -> str:
    """Column ruler: slice index mod 10 per column."""
    return "".join(str(j % 10) for j in range(num_slices))
