"""Schedule statistics: how multipath and time-varying is a solution?

The paper's framework owes its efficiency to two freedoms earlier
reservation systems lack (Section II-A): a job may ride *multiple paths
at once*, and its per-path wavelength count may *change every slice*.
:func:`schedule_statistics` quantifies how much a given assignment
actually uses those freedoms — useful both for analysis and for
demonstrating why rigid baselines (one path, one constant rate) leave
capacity stranded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import per_slice_delivery
from ..lp.model import ProblemStructure

__all__ = ["ScheduleStatistics", "schedule_statistics"]


@dataclass(frozen=True)
class ScheduleStatistics:
    """Aggregate shape metrics of one assignment.

    Attributes
    ----------
    num_jobs_served:
        Jobs with any positive assignment.
    mean_paths_used:
        Average number of distinct paths carrying positive flow per
        served job (1.0 = effectively single-path).
    max_paths_used:
        Largest path count any job uses.
    multipath_job_fraction:
        Share of served jobs using two or more paths simultaneously on
        at least one slice.
    mean_rate_changes:
        Average number of slices on which a served job's total
        wavelength count differs from the previous slice (within its
        window) — 0 for constant-rate reservations.
    time_varying_job_fraction:
        Share of served jobs whose rate changes at least once.
    active_slice_fraction:
        Mean over served jobs of (slices with positive rate) / (window
        slices) — low values mean bursty, packed schedules.
    """

    num_jobs_served: int
    mean_paths_used: float
    max_paths_used: int
    multipath_job_fraction: float
    mean_rate_changes: float
    time_varying_job_fraction: float
    active_slice_fraction: float


def schedule_statistics(
    structure: ProblemStructure, x: np.ndarray, tol: float = 1e-9
) -> ScheduleStatistics:
    """Compute :class:`ScheduleStatistics` for an assignment vector."""
    x = np.asarray(x, dtype=float)
    paths_used: list[int] = []
    concurrent_multipath: list[bool] = []
    rate_changes: list[int] = []
    active_fraction: list[float] = []

    for i in range(len(structure.jobs)):
        span = int(structure.span[i])
        block = x[structure.job_columns(i)].reshape(
            int(structure.num_paths[i]), span
        )
        if block.sum() <= tol:
            continue
        per_path_total = block.sum(axis=1)
        paths_used.append(int(np.count_nonzero(per_path_total > tol)))
        concurrent = np.count_nonzero(block > tol, axis=0)
        concurrent_multipath.append(bool(np.any(concurrent >= 2)))
        rates = block.sum(axis=0)
        rate_changes.append(int(np.count_nonzero(np.diff(rates) != 0)))
        active_fraction.append(float(np.count_nonzero(rates > tol) / span))

    if not paths_used:
        return ScheduleStatistics(
            num_jobs_served=0,
            mean_paths_used=float("nan"),
            max_paths_used=0,
            multipath_job_fraction=float("nan"),
            mean_rate_changes=float("nan"),
            time_varying_job_fraction=float("nan"),
            active_slice_fraction=float("nan"),
        )
    return ScheduleStatistics(
        num_jobs_served=len(paths_used),
        mean_paths_used=float(np.mean(paths_used)),
        max_paths_used=int(max(paths_used)),
        multipath_job_fraction=float(np.mean(concurrent_multipath)),
        mean_rate_changes=float(np.mean(rate_changes)),
        time_varying_job_fraction=float(np.mean([c > 0 for c in rate_changes])),
        active_slice_fraction=float(np.mean(active_fraction)),
    )
