"""Resilience metrics: what did the faults cost, and how fast did we heal?

A fault run's event log already contains everything needed to quantify
fault tolerance — :class:`~repro.sim.events.LinkFailed` detections,
:class:`~repro.sim.events.DeliveryLost` voidings,
:class:`~repro.sim.events.JobRescheduled` replans and the per-epoch
:class:`~repro.sim.events.SchedulingPass` records.
:func:`resilience_report` distils them into the operator-facing numbers:
completion/deadline rates under faults (optionally against a fault-free
baseline of the same workload), volume destroyed in flight, recovery
latency per failure, and rescheduling churn.

Recovery latency is measured from the moment a fault strikes to the end
of the first scheduling pass that knew about it: the window during which
traffic was riding a plan built for a network that no longer exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sim.events import (
    DeliveryLost,
    JobRescheduled,
    LinkDegraded,
    LinkFailed,
    LinkRestored,
    SchedulingPass,
)
from ..sim.simulator import SimulationResult
from .reporting import Table

__all__ = ["ResilienceReport", "resilience_report"]


@dataclass(frozen=True)
class ResilienceReport:
    """Fault-tolerance digest of one simulation run.

    Attributes
    ----------
    num_failures, num_degradations, num_repairs:
        Detected fault events (full cuts, partial wavelength losses,
        restorations).
    num_reschedules:
        ``JobRescheduled`` events: how often a surviving job had to be
        replanned around a dead link (rescheduling churn).
    volume_lost:
        Total in-flight volume voided by mid-epoch capacity loss.
    delivered_volume:
        Total volume that did arrive.
    completion_rate, deadline_rate:
        As on :class:`~repro.sim.simulator.SimulationResult`, under
        faults.
    baseline_completion_rate, baseline_deadline_rate:
        The same rates from a fault-free run of the same workload;
        ``nan`` when no baseline was supplied.
    recovery_latencies:
        Per detected failure, seconds from the fault striking to the
        end of the first scheduling pass aware of it; failures never
        followed by a pass are excluded.
    """

    num_failures: int
    num_degradations: int
    num_repairs: int
    num_reschedules: int
    volume_lost: float
    delivered_volume: float
    completion_rate: float
    deadline_rate: float
    baseline_completion_rate: float
    baseline_deadline_rate: float
    recovery_latencies: tuple[float, ...]

    @property
    def mean_recovery_latency(self) -> float:
        """Mean fault-to-replan latency; ``nan`` with no failures."""
        if not self.recovery_latencies:
            return float("nan")
        return float(np.mean(self.recovery_latencies))

    @property
    def max_recovery_latency(self) -> float:
        """Worst fault-to-replan latency; ``nan`` with no failures."""
        if not self.recovery_latencies:
            return float("nan")
        return float(max(self.recovery_latencies))

    @property
    def completion_drop(self) -> float:
        """Completion rate lost to faults vs. the baseline (``nan`` without one)."""
        return self.baseline_completion_rate - self.completion_rate

    @property
    def deadline_drop(self) -> float:
        """Deadline rate lost to faults vs. the baseline (``nan`` without one)."""
        return self.baseline_deadline_rate - self.deadline_rate

    def table(self) -> Table:
        """Render the report as a two-column metric table."""
        t = Table(["metric", "value"], title="Resilience report")
        t.add_row(["link failures detected", self.num_failures])
        t.add_row(["wavelength degradations", self.num_degradations])
        t.add_row(["link repairs", self.num_repairs])
        t.add_row(["jobs rescheduled", self.num_reschedules])
        t.add_row(["volume lost in flight", self.volume_lost])
        t.add_row(["volume delivered", self.delivered_volume])
        t.add_row(["completion rate", self.completion_rate])
        t.add_row(["deadline rate", self.deadline_rate])
        t.add_row(["baseline completion rate", self.baseline_completion_rate])
        t.add_row(["baseline deadline rate", self.baseline_deadline_rate])
        t.add_row(["mean recovery latency", self.mean_recovery_latency])
        t.add_row(["max recovery latency", self.max_recovery_latency])
        return t


def _recovery_latencies(result: SimulationResult) -> tuple[float, ...]:
    passes = sorted(
        (e for e in result.events if isinstance(e, SchedulingPass)),
        key=lambda p: p.time,
    )
    latencies = []
    for failure in (e for e in result.events if isinstance(e, LinkFailed)):
        # First pass at or after the detection boundary is the one that
        # planned around the failure; its solve time is part of the gap.
        aware = next((p for p in passes if p.time >= failure.time - 1e-9), None)
        if aware is None:
            continue
        latencies.append(aware.time + aware.solve_seconds - failure.failed_at)
    return tuple(latencies)


def resilience_report(
    result: SimulationResult,
    baseline: SimulationResult | None = None,
) -> ResilienceReport:
    """Distil a fault run (and optional fault-free baseline) into metrics.

    ``baseline`` should be the same workload simulated without a fault
    schedule; it anchors the ``*_drop`` deltas.  Passing a baseline that
    itself saw faults is rejected.
    """
    if baseline is not None and any(
        isinstance(e, (LinkFailed, LinkDegraded)) for e in baseline.events
    ):
        raise ValidationError("baseline run must be fault-free")
    events = result.events
    return ResilienceReport(
        num_failures=sum(isinstance(e, LinkFailed) for e in events),
        num_degradations=sum(isinstance(e, LinkDegraded) for e in events),
        num_repairs=sum(isinstance(e, LinkRestored) for e in events),
        num_reschedules=sum(isinstance(e, JobRescheduled) for e in events),
        volume_lost=float(
            sum(e.volume for e in events if isinstance(e, DeliveryLost))
        ),
        delivered_volume=result.delivered_volume,
        completion_rate=result.completion_rate,
        deadline_rate=result.deadline_rate,
        baseline_completion_rate=(
            baseline.completion_rate if baseline is not None else float("nan")
        ),
        baseline_deadline_rate=(
            baseline.deadline_rate if baseline is not None else float("nan")
        ),
        recovery_latencies=_recovery_latencies(result),
    )
