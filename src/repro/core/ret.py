"""Relaxing End Times: SUB-RET and Algorithm 2 (paper Section II-C).

When the network is overloaded and users prefer *complete* transfers with
a small, predictable delay over strict deadlines, the RET problem finds
the smallest common factor ``(1 + b)`` by which end times must stretch so
every job can finish in full.

* **SUB-RET** (eqs. (14)-(16)) is a feasibility problem with the
  Quick-Finish objective ``min sum_j gamma(j) sum x_i(p, j)``,
  ``gamma(j) = j + 1``, which packs flow into early slices.
* **Algorithm 2** binary-searches the smallest ``b`` for which the LP
  relaxation of SUB-RET is feasible (``b_hat``), rounds with LPDAR, and
  keeps nudging ``b`` up by ``delta`` until the *integer* solution also
  completes every job.

LP feasibility is monotone in ``b`` (a larger ``b`` only enlarges
windows), which is what makes the binary search sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Hashable, Mapping, Sequence
from typing import Literal

import numpy as np

from ..engine.engine import ModelEngine
from ..errors import InfeasibleProblemError, ScheduleError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import (
    LinearProgram,
    LPSolution,
    SolveBudget,
    SolveResilience,
    solve_lp,
)
from ..obs import NULL_TELEMETRY, Telemetry
from ..network.graph import Network
from ..network.paths import Path
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .lpdar import GreedyOrder, LpdarResult, lpdar
from .metrics import COMPLETION_TOL, average_end_time, fraction_finished

__all__ = [
    "quick_finish_gamma",
    "build_subret_lp",
    "solve_subret_lp",
    "RetResult",
    "RetMode",
    "solve_ret",
    "MAX_EXTRA_DELTA_STEPS",
]

#: How Algorithm 2 stretches job windows: ``"end_time"`` is the paper's
#: main formulation, ``end -> (1 + b) * end``; ``"interval"`` is the
#: Section II-C remark's alternative, ``end -> start + (1 + b) * (end - start)``.
RetMode = Literal["end_time", "interval"]

Node = Hashable

#: Number of extra whole-``delta`` steps allowed past ``b_max`` before
#: Algorithm 2 gives up (safety valve; never reached in practice).
MAX_EXTRA_DELTA_STEPS = 1

#: Stand-in for a bounds probe whose feasibility was certified by the
#: engine's carried-plan witness instead of solved.  Only ever compared
#: by identity; if the binary search finishes with the sentinel still
#: selected, the probe is lazily solved for real before rounding.
_WITNESS = object()


def quick_finish_gamma(slice_index: np.ndarray) -> np.ndarray:
    """The paper's Quick-Finish cost ``gamma(j) = j + 1``."""
    return np.asarray(slice_index, dtype=float) + 1.0


def build_subret_lp(
    structure: ProblemStructure,
    gamma: Callable[[np.ndarray], np.ndarray] = quick_finish_gamma,
) -> LinearProgram:
    """Assemble the LP relaxation of SUB-RET over ``structure``.

    ``structure`` must already encode the extended windows (build it from
    ``jobs.with_extended_ends(b)``).  ``gamma`` maps slice indices to
    costs; it must be positive so the objective stays bounded.
    """
    costs = gamma(structure.col_slice)
    if np.any(costs <= 0) or not np.all(np.isfinite(costs)):
        raise ValidationError("gamma must produce positive finite costs")
    from ..engine.assembly import capacity_floor_blocks

    # Completion floors: -delivered_i <= -d_i (constraint (15)).
    a_ub, b_ub = capacity_floor_blocks(structure, -structure.demands)
    return LinearProgram(objective=costs, a_ub=a_ub, b_ub=b_ub, maximize=False)


def solve_subret_lp(
    structure: ProblemStructure,
    gamma: Callable[[np.ndarray], np.ndarray] = quick_finish_gamma,
    telemetry: Telemetry | None = None,
    resilience: SolveResilience | None = None,
    budget: SolveBudget | None = None,
) -> LPSolution:
    """Solve the SUB-RET LP relaxation; raises when infeasible."""
    return solve_lp(
        build_subret_lp(structure, gamma),
        telemetry=telemetry,
        label="subret",
        resilience=resilience,
        budget=budget,
    )


@dataclass(frozen=True)
class RetResult:
    """Outcome of Algorithm 2.

    Attributes
    ----------
    b_hat:
        Smallest ``b`` (to binary-search tolerance) at which the LP
        relaxation of SUB-RET is feasible (Algorithm 2, step 1).
    b_final:
        The extension actually returned: ``b_hat`` plus however many
        ``delta`` nudges the integer rounding needed (steps 3-5).
    structure:
        The problem structure at ``b_final`` (extended windows/grid).
    assignments:
        LP / LPD / LPDAR assignments at ``b_final``.
    delta_steps:
        Number of ``delta`` increments taken after ``b_hat``.
    mode:
        Window-stretch rule used (``"end_time"`` or ``"interval"``).
    """

    b_hat: float
    b_final: float
    structure: ProblemStructure
    assignments: LpdarResult
    delta_steps: int
    mode: str = "end_time"

    def fraction_finished(self, which: str = "lpdar") -> float:
        """Share of jobs completed under one of the three assignments."""
        return fraction_finished(self.structure, self._select(which))

    def average_end_time(self, which: str = "lpdar") -> float:
        """Average completion time (slice counts) of finished jobs."""
        return average_end_time(self.structure, self._select(which))

    def _select(self, which: str) -> np.ndarray:
        try:
            return getattr(self.assignments, f"x_{which}")
        except AttributeError:
            raise ValidationError(
                f"unknown assignment {which!r}; pick lp, lpd or lpdar"
            ) from None

    def verify(self, which: str = "lpdar", require_complete: bool = True):
        """Check this RET solution against every paper invariant.

        RET's contract (constraint (15)) is that every job completes
        within the extended windows, so the demand check defaults on;
        pass ``require_complete=False`` for intermediate solutions.
        Returns the :class:`~repro.verify.VerificationReport`.
        """
        from ..verify.checker import verify_schedule

        return verify_schedule(
            None, self, which=which, require_complete=require_complete
        )


def solve_ret(
    network: Network,
    jobs: JobSet,
    slice_length: float = 1.0,
    k_paths: int = 4,
    b_max: float = 10.0,
    delta: float = 0.1,
    search_tol: float = 1e-3,
    gamma: Callable[[np.ndarray], np.ndarray] = quick_finish_gamma,
    order: GreedyOrder = "paper",
    cap_at_target: bool = True,
    rng: np.random.Generator | None = None,
    path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
    mode: RetMode = "end_time",
    capacity_profile=None,
    telemetry: Telemetry | None = None,
    resilience: SolveResilience | None = None,
    budget: SolveBudget | None = None,
    engine: "ModelEngine | None" = None,
    warm_start: bool = True,
) -> RetResult:
    """Algorithm 2: find the smallest end-time extension completing all jobs.

    Parameters
    ----------
    network, jobs:
        The instance.  Windows are stretched as ``end -> (1 + b) * end``.
    slice_length:
        Slice length of the (uniform) scheduling grid, which always
        starts at ``t = 0`` and is regenerated to cover each candidate
        extension.
    k_paths:
        Allowed paths per job.
    b_max:
        Upper end of the binary-search interval.  If SUB-RET is still
        LP-infeasible at ``b_max``, a :class:`ScheduleError` is raised.
    delta:
        Step-4 increment applied when the rounded (integer) solution
        fails to complete every job (paper default 0.1).
    search_tol:
        Binary-search resolution on ``b``.
    gamma:
        Quick-Finish cost function (default ``j + 1``).
    order, cap_at_target, rng:
        Greedy-adjustment variant, forwarded to
        :func:`repro.core.lpdar.greedy_adjust`.  ``cap_at_target``
        defaults to True here: granting a job more than its remaining
        demand cannot help completion, and leaving the surplus to needier
        jobs strictly helps.  Pass False for the paper-literal pass.
    path_sets:
        Optional precomputed path sets (reused across all iterations).
    mode:
        ``"end_time"`` (paper main text): stretch each end to
        ``(1 + b) * E_i``.  ``"interval"`` (Section II-C remark):
        stretch each window length to ``(1 + b) * (E_i - S_i)``, keeping
        the start fixed.  Feasibility is monotone in ``b`` either way.
    capacity_profile:
        Optional :class:`~repro.network.capacity.CapacityProfile` in
        absolute time (constraint (3)'s ``C_e(j)``).  Re-based onto each
        candidate extension's grid; slices past the profile's horizon
        use installed capacity.  Its slice length must match
        ``slice_length``.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  The whole call is timed
        under a ``"ret"`` span, and every candidate ``b`` the algorithm
        probes leaves a ``ret_probe`` record — the binary-search trace —
        plus a final ``ret_result`` record.
    resilience:
        Optional :class:`~repro.lp.solver.SolveResilience` forwarded to
        every SUB-RET probe's LP solve (retry / fallback chain).
    budget:
        Optional :class:`~repro.lp.solver.SolveBudget` covering the
        *whole* Algorithm 2 run: checked between binary-search probes
        (``"ret_probe"``) and forwarded to every probe's LP solve.
        Unlike :meth:`Scheduler.schedule` there is no degradation rung
        for RET — a partial extension search has no meaningful fallback
        — so exhaustion raises
        :class:`~repro.errors.BudgetExceededError` and the caller (e.g.
        the simulator's overload handler) decides what to do.
    engine:
        Optional shared :class:`~repro.engine.ModelEngine` (must be
        bound to ``network`` with matching ``k_paths``).  The simulator
        passes its own so probe layouts and solutions carry over across
        epochs; by default each call builds a private engine.
    warm_start:
        When no ``engine`` is supplied, whether the private engine may
        reuse layouts and memoize probe solves (results are identical
        either way; ``False`` — the CLI's ``--no-warm-start`` — forces
        the fully from-scratch audit path).  Ignored when ``engine`` is
        given.

    Raises
    ------
    ScheduleError
        SUB-RET is LP-infeasible even at ``b_max``, or the ``delta`` loop
        runs past ``b_max`` without completing every job.
    BudgetExceededError
        ``budget`` ran out between or during probes.
    """
    if b_max <= 0:
        raise ValidationError(f"b_max must be positive, got {b_max}")
    if delta <= 0:
        raise ValidationError(f"delta must be positive, got {delta}")
    if search_tol <= 0:
        raise ValidationError(f"search_tol must be positive, got {search_tol}")
    if mode not in ("end_time", "interval"):
        raise ValidationError(f"unknown RET mode {mode!r}")
    telemetry = telemetry or NULL_TELEMETRY
    if engine is None:
        engine = (
            ModelEngine(network, k_paths, telemetry=telemetry)
            if warm_start
            else ModelEngine.cold(network, k_paths, telemetry=telemetry)
        )
    else:
        if engine.network is not network:
            raise ValidationError(
                "engine is bound to a different network than solve_ret's"
            )
        if engine.k_paths != k_paths:
            raise ValidationError(
                f"engine resolves k_paths={engine.k_paths} but solve_ret "
                f"was asked for k_paths={k_paths}"
            )
    if path_sets is None:
        path_sets = engine.topology.path_sets(jobs.od_pairs())
    if budget is not None:
        budget.ensure_started()
    # The default Quick-Finish objective is part of the LP family's
    # identity; a caller-supplied gamma is not visible to the memo key,
    # so those probes always solve from scratch.
    cacheable_gamma = gamma is quick_finish_gamma

    def attempt(
        b: float, phase: str
    ) -> tuple[ProblemStructure, LPSolution] | None:
        """Structure + LP solution at extension ``b``, or None if infeasible.

        ``phase`` labels the probe's role in the algorithm (``"bounds"``
        for the b_max / 0 endpoint checks, ``"search"`` for bisection,
        ``"delta"`` for integer-completion nudges) so the telemetry
        trace distinguishes them.
        """
        if budget is not None:
            budget.check("ret_probe")
        structure = engine.extend_windows(
            jobs,
            b,
            mode=mode,
            slice_length=slice_length,
            path_sets=path_sets,
            capacity_profile=capacity_profile,
        )
        telemetry.count("ret_probes")
        try:
            solution = engine.cached_solve(
                structure,
                "subret",
                lambda: build_subret_lp(structure, gamma),
                cache=cacheable_gamma,
                telemetry=telemetry,
                resilience=resilience,
                budget=budget,
                label="subret",
            )
        except InfeasibleProblemError:
            telemetry.record(
                "ret_probe",
                phase=phase,
                b=b,
                feasible=False,
                num_cols=structure.num_cols,
            )
            return None
        telemetry.record(
            "ret_probe",
            phase=phase,
            b=b,
            feasible=True,
            num_cols=structure.num_cols,
            iterations=solution.iterations,
        )
        return structure, solution

    def witness_certified() -> bool:
        """Can the engine's carried plan vouch for feasibility at b_max?

        Only applies without a capacity profile: the witness certifies
        against installed capacities, which is exactly what the SUB-RET
        LP uses when no profile is attached (fault epochs constrain RET
        through banned ``path_sets``, which certification re-checks per
        grant).  A certificate is an explicit feasible point, so the
        probe's *outcome* is known; its LP solution is only computed
        later if the rounding step actually needs it.
        """
        if capacity_profile is not None or not engine.has_carried_plan:
            return False
        extended = (
            jobs.with_extended_intervals(b_max)
            if mode == "interval"
            else jobs.with_extended_ends(b_max)
        )
        grid = TimeGrid.covering(extended.max_end(), slice_length)
        return engine.certify_feasible(extended, grid, path_sets)

    with telemetry.span("ret"):
        # Step 1: binary search for the smallest LP-feasible b.  The
        # b_max endpoint exists only to fail fast on truly uncarriable
        # demand — its solution is discarded whenever any smaller b is
        # feasible — so a carried-plan certificate stands in for the
        # whole build-and-solve.
        upper_attempt: tuple[ProblemStructure, LPSolution] | object | None
        if witness_certified():
            if budget is not None:
                budget.check("ret_probe")
            upper_attempt = _WITNESS
            telemetry.count("ret_witness_skips")
            telemetry.record(
                "ret_probe",
                phase="bounds",
                b=b_max,
                feasible=True,
                num_cols=0,
                iterations=0,
                witness=True,
            )
        else:
            upper_attempt = attempt(b_max, "bounds")
            if upper_attempt is None:
                raise ScheduleError(
                    f"SUB-RET is infeasible even with end times extended by "
                    f"(1 + {b_max}); the network cannot carry this demand"
                )
        zero_attempt = attempt(0.0, "bounds")
        if zero_attempt is not None:
            b_hat = 0.0
            best = zero_attempt
        else:
            lo, hi = 0.0, b_max
            best = upper_attempt
            while hi - lo > search_tol:
                mid = 0.5 * (lo + hi)
                result = attempt(mid, "search")
                if result is None:
                    lo = mid
                else:
                    hi = mid
                    best = result
            b_hat = hi

        # Steps 2-5: round with LPDAR; extend by delta until all jobs finish.
        b = b_hat
        current: tuple[ProblemStructure, LPSolution] | object | None = best
        delta_steps = 0
        while True:
            if current is _WITNESS:
                # The witness certified this b feasible but skipped its
                # solve; the candidate became the rounding point after
                # all, so solve the identical LP now (same structure,
                # same optimum — the certificate only deferred it).
                current = attempt(b, "bounds")
            if current is not None:
                structure, lp_solution = current
                rounded = lpdar(
                    structure,
                    lp_solution.x,
                    order=order,
                    cap_at_target=cap_at_target,
                    rng=rng,
                    telemetry=telemetry,
                )
                delivered = structure.delivered(rounded.x_lpdar)
                if np.all(delivered >= structure.demands - COMPLETION_TOL):
                    telemetry.record(
                        "ret_result",
                        b_hat=b_hat,
                        b_final=b,
                        delta_steps=delta_steps,
                        mode=mode,
                    )
                    return RetResult(
                        b_hat=b_hat,
                        b_final=b,
                        structure=structure,
                        assignments=rounded,
                        delta_steps=delta_steps,
                        mode=mode,
                    )
            b += delta
            delta_steps += 1
            if b > b_max + MAX_EXTRA_DELTA_STEPS * delta:
                # Raising delta would only coarsen the steps, not enlarge
                # the search range; only a larger b_max can help here.
                raise ScheduleError(
                    f"LPDAR could not complete all jobs even at "
                    f"b = {b - delta:.3f} (b_max = {b_max}); raise b_max"
                )
            # LP infeasibility above b_hat can only come from slice rounding
            # at the window edge; attempt() returning None just means another
            # delta step is needed.
            current = attempt(b, "delta")
