"""End-to-end scheduler facade: stage 1 -> stage 2 -> LPDAR.

:class:`Scheduler` packages the paper's maximizing-throughput algorithm
(Section II-B) behind one call: compute ``Z*``, solve the stage-2 LP
relaxation, round with LPDAR, and — per Remark 1 — escalate ``alpha``
when the integer solution misses the fairness floor.  The result object
exposes everything the controller needs to configure the network: per
(job, path, slice) wavelength counts, per-job guaranteed sizes for
overload re-negotiation (Remark 2), and the evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterator, Mapping, Sequence

import numpy as np

from ..engine.engine import ModelEngine
from ..errors import BudgetExceededError, ScheduleError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import LPSolution, SolveBudget, SolveResilience
from ..network.graph import Network
from ..obs import NULL_TELEMETRY, Telemetry
from ..network.paths import Path
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .lpdar import GreedyOrder, LpdarResult, discretize, greedy_adjust, lpdar
from .metrics import fraction_finished
from .stage2 import Stage2Result, solve_stage2_lp
from .throughput import Stage1Result, solve_stage1

__all__ = ["WavelengthGrant", "ScheduleResult", "Scheduler"]

Node = Hashable


@dataclass(frozen=True)
class WavelengthGrant:
    """One row of the final schedule: wavelengths on a path in a slice.

    Attributes
    ----------
    job_id:
        The granted job.
    path:
        Node sequence of the granted path.
    slice_index:
        Time slice of the grant.
    interval:
        The slice's ``(start, end)`` times.
    wavelengths:
        Integer number of wavelengths reserved.
    """

    job_id: int | str
    path: tuple[Node, ...]
    slice_index: int
    interval: tuple[float, float]
    wavelengths: int


@dataclass(frozen=True)
class ScheduleResult:
    """Everything produced by one scheduling pass.

    Attributes
    ----------
    structure:
        The problem structure (network, jobs, grid, paths).
    stage1:
        Stage-1 outcome, including ``Z*``.
    stage2:
        Stage-2 LP outcome at the final ``alpha``.
    assignments:
        LP / LPD / LPDAR assignment vectors.
    alpha:
        The fairness parameter actually used (after any escalation).
    alpha_escalations:
        How many times ``alpha`` was raised per Remark 1.
    degraded:
        ``None`` for a full solve; otherwise the degradation-ladder rung
        that produced this schedule after a
        :class:`~repro.errors.BudgetExceededError` — ``"lpd_greedy"``
        (LPD floor of the last fractional solution plus the Algorithm 1
        greedy residual pass) or ``"greedy_baseline"`` (greedy from an
        empty assignment; no LP solved at all).  Degraded schedules are
        always capacity-feasible and integer, but carry no optimality or
        fairness guarantee.
    degraded_reason:
        Human-readable cause of the degradation (the budget error
        message), or ``None``.
    """

    structure: ProblemStructure
    stage1: Stage1Result
    stage2: Stage2Result
    assignments: LpdarResult
    alpha: float
    alpha_escalations: int
    degraded: str | None = None
    degraded_reason: str | None = None

    # ------------------------------------------------------------------
    # Headline quantities
    # ------------------------------------------------------------------
    @property
    def zstar(self) -> float:
        """Maximum concurrent throughput from stage 1."""
        return self.stage1.zstar

    @property
    def overloaded(self) -> bool:
        """Paper's overload classification: ``Z* <= 1``."""
        return self.stage1.overloaded

    @property
    def x(self) -> np.ndarray:
        """The deployable (integer, LPDAR) assignment."""
        return self.assignments.x_lpdar

    def assignment(self, which: str = "lpdar") -> np.ndarray:
        """One of the three assignment vectors: ``lp``, ``lpd``, ``lpdar``."""
        try:
            return getattr(self.assignments, f"x_{which}")
        except AttributeError:
            raise ValidationError(
                f"unknown assignment {which!r}; pick lp, lpd or lpdar"
            ) from None

    def weighted_throughput(self, which: str = "lpdar") -> float:
        """Paper objective (7) under the chosen assignment."""
        return self.structure.weighted_throughput(self.assignment(which))

    def normalized_throughput(self, which: str = "lpdar") -> float:
        """Throughput relative to the LP upper bound (Figs. 1-2 metric)."""
        lp = self.weighted_throughput("lp")
        if lp <= 0:
            raise ValidationError("LP throughput is zero; nothing scheduled")
        return self.weighted_throughput(which) / lp

    def job_throughputs(self, which: str = "lpdar") -> np.ndarray:
        """Per-job ``Z_i`` (eq. (6)) under the chosen assignment."""
        return self.structure.throughputs(self.assignment(which))

    def guaranteed_sizes(self, which: str = "lpdar") -> np.ndarray:
        """Sizes the network can guarantee by the deadlines (Remark 2).

        For a job with ``Z_i < 1`` this is the reduced demand
        ``Z_i * D_i`` the user would be asked to accept; jobs with
        ``Z_i >= 1`` keep their full size.
        """
        z = self.job_throughputs(which)
        return np.minimum(z, 1.0) * self.structure.jobs.sizes()

    def fraction_finished(self, which: str = "lpdar") -> float:
        """Share of jobs whose *original* demand is fully delivered."""
        return fraction_finished(self.structure, self.assignment(which))

    def meets_fairness(self, which: str = "lpdar", tol: float = 1e-9) -> bool:
        """Whether every job meets the ``(1 - alpha) Z*`` floor."""
        floor = (1.0 - self.alpha) * self.zstar
        return bool(np.all(self.job_throughputs(which) >= floor - tol))

    def verify(self, which: str = "lpdar"):
        """Check this schedule against every paper invariant.

        Returns the :class:`~repro.verify.VerificationReport` from the
        shared checker (:func:`repro.verify.verify_schedule`); use its
        ``ok`` / ``explain()`` / ``raise_if_failed()`` to act on it.
        """
        from ..verify.checker import verify_schedule

        return verify_schedule(None, self, which=which)

    # ------------------------------------------------------------------
    # Deployment view
    # ------------------------------------------------------------------
    def grants(self, which: str = "lpdar") -> Iterator[WavelengthGrant]:
        """Iterate nonzero wavelength grants, slice-major.

        This is the concrete configuration the network controller would
        push to the switches: for each time slice, which paths of which
        jobs hold how many wavelengths.
        """
        x = self.assignment(which)
        structure = self.structure
        grid = structure.grid
        order = np.lexsort(
            (structure.col_path, structure.col_job, structure.col_slice)
        )
        for c in order:
            count = x[c]
            if count <= 0:
                continue
            i = int(structure.col_job[c])
            j = int(structure.col_slice[c])
            path = structure.paths[i][int(structure.col_path[c])]
            yield WavelengthGrant(
                job_id=structure.jobs[i].id,
                path=path.nodes,
                slice_index=j,
                interval=(grid.slice_start(j), grid.slice_end(j)),
                wavelengths=int(round(count)),
            )


class Scheduler:
    """The maximizing-throughput scheduling algorithm, end to end.

    Parameters
    ----------
    network:
        The wavelength-switched network.
    k_paths:
        Allowed paths per job (paper: 4-8).
    alpha:
        Initial fairness slack for constraint (9).
    alpha_step, alpha_max:
        Remark-1 escalation: when the LPDAR solution violates the
        fairness floor, ``alpha`` is raised by ``alpha_step`` (relaxing
        the floor) and stage 2 re-solved, up to ``alpha_max``.  Set
        ``alpha_step = 0`` to disable escalation.
    slice_length:
        Slice length used when no grid is passed to :meth:`schedule`.
    greedy_order, cap_at_target:
        Algorithm 1 variant knobs (see :func:`repro.core.lpdar.greedy_adjust`).
    weights:
        Optional per-job stage-2 weights (default: the paper's size
        weighting).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` shared by every
        :meth:`schedule` call: structure assembly, stage-1/stage-2
        solves and the LPDAR rounding all report into it under a
        ``"schedule"`` span.  ``None`` (the default) measures nothing.
    resilience:
        Optional :class:`~repro.lp.solver.SolveResilience` forwarded to
        every stage-1/stage-2 LP solve, enabling the bounded retry /
        backend-fallback chain.  ``None`` (the default) solves once.
    budget:
        Optional :class:`~repro.lp.solver.SolveBudget` default for every
        :meth:`schedule` call (a per-call ``budget=`` overrides it).
        When a solve overruns the budget, :meth:`schedule` does not
        raise: it walks the degradation ladder (full pipeline → LPD
        floor + greedy residual → greedy baseline) and returns a
        feasible schedule with ``degraded`` set.
    engine:
        Optional shared :class:`~repro.engine.ModelEngine` (must be
        bound to ``network`` with ``k_paths`` matching).  Callers that
        schedule repeatedly — the simulator above all — pass one engine
        so path resolution, structure layouts and per-job fragments
        carry over between calls; by default the scheduler builds its
        own.
    verify_solutions:
        Treat solver backends as untrusted: every stage-1/stage-2
        solution is checked by :func:`repro.verify.verify_schedule`
        (non-negativity and capacity of the LP point) *before* rounding,
        so a backend returning a subtly wrong solution — e.g. one
        wrapped by :class:`repro.chaos.FaultyBackend` — raises
        :class:`~repro.errors.ScheduleError` instead of flowing into a
        committed schedule.  Off by default: the bundled backends clamp
        their output into bounds, and the check costs two sparse
        mat-vecs per solve.
    """

    def __init__(
        self,
        network: Network,
        k_paths: int = 4,
        alpha: float = 0.1,
        alpha_step: float = 0.1,
        alpha_max: float = 0.5,
        slice_length: float = 1.0,
        greedy_order: GreedyOrder = "paper",
        cap_at_target: bool = False,
        rng: np.random.Generator | None = None,
        telemetry: Telemetry | None = None,
        resilience: SolveResilience | None = None,
        budget: SolveBudget | None = None,
        engine: "ModelEngine | None" = None,
        verify_solutions: bool = False,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
        if alpha_step < 0 or alpha_max < alpha or alpha_max > 1.0:
            raise ValidationError(
                f"need 0 <= alpha_step and alpha <= alpha_max <= 1, got "
                f"step={alpha_step}, max={alpha_max}"
            )
        if slice_length <= 0:
            raise ValidationError(f"slice_length must be > 0, got {slice_length}")
        self.network = network
        self.k_paths = k_paths
        self.alpha = alpha
        self.alpha_step = alpha_step
        self.alpha_max = alpha_max
        self.slice_length = slice_length
        self.greedy_order = greedy_order
        self.cap_at_target = cap_at_target
        self.rng = rng
        self.telemetry = telemetry or NULL_TELEMETRY
        self.resilience = resilience
        self.budget = budget
        self.verify_solutions = verify_solutions
        if engine is None:
            engine = ModelEngine(network, k_paths, telemetry=self.telemetry)
        else:
            if engine.network is not network:
                raise ValidationError(
                    "engine is bound to a different network than the scheduler's"
                )
            if engine.k_paths != k_paths:
                raise ValidationError(
                    f"engine resolves k_paths={engine.k_paths} but the "
                    f"scheduler was asked for k_paths={k_paths}"
                )
        self.engine = engine

    def build_structure(
        self,
        jobs: JobSet,
        grid: TimeGrid | None = None,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        capacity_profile=None,
    ) -> ProblemStructure:
        """Assemble the shared problem structure for ``jobs``.

        ``capacity_profile`` (a
        :class:`~repro.network.capacity.CapacityProfile`) makes the
        schedule honour time-varying ``C_e(j)``; its grid must match the
        scheduling grid, so pass an explicit ``grid`` alongside it.
        Edges the profile zeroes out for the *entire* horizon (full
        outages) are excluded from path computation, so jobs route
        around dead links instead of holding useless zero-capacity
        grants on them.
        """
        banned = frozenset()
        if path_sets is None and capacity_profile is not None:
            dead = np.flatnonzero(capacity_profile.matrix.max(axis=1) == 0)
            banned = frozenset(int(e) for e in dead)
        return self.engine.structure(
            jobs,
            grid,
            slice_length=self.slice_length,
            path_sets=path_sets,
            capacity_profile=capacity_profile,
            banned_edges=banned,
        )

    def schedule(
        self,
        jobs: JobSet,
        grid: TimeGrid | None = None,
        weights: np.ndarray | None = None,
        capacity_profile=None,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None = None,
        budget: SolveBudget | None = None,
    ) -> ScheduleResult:
        """Run stage 1, stage 2 and LPDAR; escalate ``alpha`` if needed.

        When ``weights`` is None and any job carries an explicit
        ``weight``, those are used (unweighted jobs default to the
        paper's size weighting, ``w_i = D_i``, before normalization).
        ``path_sets`` optionally overrides path computation (e.g. the
        online controller rebuilding paths around failed links).

        With a ``budget`` (per-call, or the scheduler-wide default), a
        :class:`~repro.errors.BudgetExceededError` from any LP solve is
        absorbed by the degradation ladder instead of propagating: the
        pass falls back to the cheapest rung that still yields a
        feasible integer schedule, marked via ``result.degraded``.
        """
        result = self._schedule(
            jobs, grid, weights, capacity_profile, path_sets, budget
        )
        # Committed schedules seed the engine's cross-epoch carried
        # state: the integer LPDAR plan is capacity-feasible by
        # construction (degraded rungs included), so the next epoch's
        # RET bounds probe can try it as a feasibility witness before
        # paying a real solve.  A ScheduleError propagates past this
        # point, leaving any previous carried plan in place.
        self.engine.carry_plan(result.structure, result.x)
        return result

    def _schedule(
        self,
        jobs: JobSet,
        grid: TimeGrid | None,
        weights: np.ndarray | None,
        capacity_profile,
        path_sets: Mapping[tuple[Node, Node], Sequence[Path]] | None,
        budget: SolveBudget | None,
    ) -> ScheduleResult:
        """The scheduling pipeline proper (see :meth:`schedule`)."""
        telemetry = self.telemetry
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget.ensure_started()
        with telemetry.span("schedule"):
            structure = self.build_structure(
                jobs, grid, path_sets=path_sets, capacity_profile=capacity_profile
            )
            if weights is None and any(j.weight is not None for j in jobs):
                weights = np.array(
                    [j.weight if j.weight is not None else j.size for j in jobs]
                )
            try:
                stage1 = solve_stage1(
                    structure,
                    telemetry=telemetry,
                    resilience=self.resilience,
                    budget=budget,
                )
            except BudgetExceededError as exc:
                # Rung 3: nothing solved; greedy from an empty assignment.
                return self._degraded(
                    structure, None, "greedy_baseline", str(exc), self.alpha, 0
                )
            if self.verify_solutions:
                self._verify_solution(structure, stage1.x, "stage1")

            alpha = self.alpha
            escalations = 0
            result: ScheduleResult | None = None
            while True:
                try:
                    stage2 = solve_stage2_lp(
                        structure,
                        stage1.zstar,
                        alpha,
                        weights,
                        telemetry=telemetry,
                        resilience=self.resilience,
                        budget=budget,
                    )
                except BudgetExceededError as exc:
                    if result is not None:
                        # Budget died mid alpha-escalation; the previous
                        # pass is a complete, valid schedule (it merely
                        # misses the fairness floor), so commit it.
                        telemetry.count("budget_stopped_escalations")
                        return result
                    # Rung 2: stage 1 solved but stage 2 did not; round
                    # the stage-1 fractional assignment instead.
                    return self._degraded(
                        structure, stage1, "lpd_greedy", str(exc), alpha, escalations
                    )
                if self.verify_solutions:
                    self._verify_solution(structure, stage2.x, "stage2")
                rounded = lpdar(
                    structure,
                    stage2.x,
                    order=self.greedy_order,
                    cap_at_target=self.cap_at_target,
                    rng=self.rng,
                    telemetry=telemetry,
                )
                result = ScheduleResult(
                    structure=structure,
                    stage1=stage1,
                    stage2=stage2,
                    assignments=rounded,
                    alpha=alpha,
                    alpha_escalations=escalations,
                )
                if (
                    self.alpha_step <= 0
                    or alpha >= self.alpha_max
                    or result.meets_fairness("lpdar")
                ):
                    telemetry.count("schedule_passes")
                    telemetry.count("alpha_escalations", escalations)
                    return result
                if budget is not None and budget.expired():
                    telemetry.count("budget_stopped_escalations")
                    return result
                alpha = min(alpha + self.alpha_step, self.alpha_max)
                escalations += 1

    def _verify_solution(
        self, structure: ProblemStructure, x: np.ndarray, stage: str
    ) -> None:
        """Reject an untrusted solver solution before it is rounded.

        Runs the shared checker on the fractional LP point (``which="lp"``
        semantics: non-negativity and capacity).  Raising here happens
        *before* any :class:`ScheduleResult` exists, so nothing downstream
        — the simulator's journal commit, the service's batch responses —
        can ever act on the corrupt solution.
        """
        from ..verify.checker import verify_schedule

        report = verify_schedule(
            structure, np.asarray(x, dtype=float), which="lp"
        )
        if not report.ok:
            self.telemetry.count("solver_solutions_rejected")
            raise ScheduleError(
                f"{stage} solver returned an invalid solution, rejected by "
                f"verify_schedule before commit:\n{report.explain()}"
            )

    def _degraded(
        self,
        structure: ProblemStructure,
        stage1: Stage1Result | None,
        level: str,
        reason: str,
        alpha: float,
        escalations: int,
    ) -> ScheduleResult:
        """Build a budget-degraded :class:`ScheduleResult`.

        ``"lpd_greedy"`` rounds the stage-1 fractional assignment (LPD
        truncation + Algorithm 1 residual pass); ``"greedy_baseline"``
        runs Algorithm 1 from an all-zero assignment.  Both are integer
        and capacity-feasible by construction, so the epoch always has
        something checker-clean to commit.  Placeholder stage-1/stage-2
        results (``zstar = 0``, zero iterations) stand in for the solves
        that never ran.
        """
        telemetry = self.telemetry
        n = structure.num_cols
        frac = (
            stage1.x if (level == "lpd_greedy" and stage1 is not None)
            else np.zeros(n)
        )
        x_lpd = discretize(frac)
        x_lpdar = greedy_adjust(
            structure,
            x_lpd,
            order=self.greedy_order,
            cap_at_target=self.cap_at_target,
            rng=self.rng,
            telemetry=telemetry,
        )
        rounded = LpdarResult(
            x_lp=np.asarray(frac, dtype=float), x_lpd=x_lpd, x_lpdar=x_lpdar
        )
        if stage1 is None:
            stage1 = Stage1Result(
                zstar=0.0,
                x=np.zeros(n),
                solution=LPSolution(x=np.zeros(n + 1), objective=0.0),
            )
        frac_obj = structure.weighted_throughput(rounded.x_lp)
        stage2 = Stage2Result(
            x=rounded.x_lp,
            objective=frac_obj,
            zstar=stage1.zstar,
            alpha=alpha,
            solution=LPSolution(x=rounded.x_lp, objective=frac_obj),
        )
        telemetry.count("degraded_solves")
        telemetry.count(f"degraded_solves_{level}")
        telemetry.record("degraded_solve", level=level, reason=reason)
        telemetry.count("schedule_passes")
        return ScheduleResult(
            structure=structure,
            stage1=stage1,
            stage2=stage2,
            assignments=rounded,
            alpha=alpha,
            alpha_escalations=escalations,
            degraded=level,
            degraded_reason=reason,
        )
