"""Stage 1: the maximum concurrent throughput ``Z*`` (paper eqs. (1)-(5)).

The stage-1 problem is the fractional maximum-concurrent-flow program:
maximize ``Z`` such that every job can deliver ``Z`` times its demand
within its window without exceeding any link's wavelength count on any
slice.  Integrality is deliberately *not* imposed here — ``Z*`` only
feeds the stage-2 fairness floor and the overload classification:

* ``Z* < 1``  — the network is overloaded; job sizes must shrink (or end
  times stretch, Section II-C) for all deadlines to hold.
* ``Z* >= 1`` — every request fits; demands could even scale up by
  ``Z*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lp.model import ProblemStructure
from ..lp.solver import (
    LinearProgram,
    LPSolution,
    SolveBudget,
    SolveResilience,
    solve_lp,
)
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["Stage1Result", "build_stage1_lp", "solve_stage1"]

#: Networks with ``Z*`` at most this are "overloaded" in the paper's sense.
OVERLOAD_THRESHOLD = 1.0


@dataclass(frozen=True)
class Stage1Result:
    """Outcome of the stage-1 solve.

    Attributes
    ----------
    zstar:
        The maximum concurrent throughput ``Z*``.
    x:
        A fractional assignment achieving ``Z*`` (diagnostic; stage 2
        recomputes its own assignment).
    solution:
        The raw LP solution (variables are ``x`` columns plus ``Z``
        appended last).
    """

    zstar: float
    x: np.ndarray
    solution: LPSolution

    @property
    def overloaded(self) -> bool:
        """Paper's overload classification: ``Z* <= 1``."""
        return self.zstar <= OVERLOAD_THRESHOLD


def build_stage1_lp(structure: ProblemStructure) -> LinearProgram:
    """Assemble the stage-1 LP: ``max Z`` s.t. (2)-(5).

    Variables are the ``num_cols`` wavelength assignments followed by one
    extra column for ``Z``.  Constraint (2) becomes the equality block
    ``demand_matrix @ x - d_i * Z = 0``; constraint (3) is the capacity
    block with a zero column for ``Z``.  The stacked blocks come from
    :func:`repro.engine.assembly.stage1_blocks`, which caches them on
    the structure for repeat assemblies of the same instance.
    """
    from ..engine.assembly import stage1_blocks

    a_eq, b_eq, a_ub, b_ub = stage1_blocks(structure)
    objective = np.zeros(structure.num_cols + 1)
    objective[-1] = 1.0
    return LinearProgram(
        objective=objective,
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        maximize=True,
    )


def solve_stage1(
    structure: ProblemStructure,
    telemetry: Telemetry | None = None,
    resilience: SolveResilience | None = None,
    budget: SolveBudget | None = None,
) -> Stage1Result:
    """Solve the stage-1 MCF problem and return ``Z*``.

    The problem is always feasible (``x = 0, Z = 0``) and bounded
    (capacities are finite and every job's demand is positive), so this
    never raises for modelling reasons.  ``telemetry`` (optional) times
    assembly and solve under a ``"stage1"`` span; ``resilience``
    (optional) enables :func:`~repro.lp.solver.solve_lp`'s bounded
    retry / backend-fallback chain; ``budget`` (optional) forwards a
    :class:`~repro.lp.solver.SolveBudget` deadline to the solve.
    """
    telemetry = telemetry or NULL_TELEMETRY
    with telemetry.span("stage1"):
        problem = build_stage1_lp(structure)
        solution = solve_lp(
            problem,
            telemetry=telemetry,
            label="stage1",
            resilience=resilience,
            budget=budget,
        )
    zstar = float(solution.x[-1])
    return Stage1Result(
        zstar=zstar, x=solution.x[:-1].copy(), solution=solution
    )
