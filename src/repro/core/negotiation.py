"""Controller-user negotiation rounds (paper Sections II-B/II-C).

In overload the controller cannot grant every request as submitted; the
paper describes a *negotiation*: the network proposes modified terms —
reduced sizes (action ii, Remark 2) or extended end times (action iii,
RET) — "the users may modify the job parameters and re-submit the
modified requests", and "this negotiation process can be further
repeated."

:class:`NegotiationSession` makes that loop a first-class object:

1. ``propose_size_reduction()`` or ``propose_deadline_extension()``
   computes a per-job proposal from the current request set;
2. ``respond(job_id, ...)`` records each user's decision — accept the
   proposal, keep the original request, withdraw, or counter with their
   own size/end;
3. ``apply_responses()`` folds the decisions into a new request set and
   starts the next round;
4. the session converges when the current set is admissible
   (``Z* >= 1``) or every unhappy user has withdrawn.

The session is deliberately mechanism-agnostic about *user* behaviour —
callers script the responses (or wire them to a real request queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

from ..errors import ValidationError
from ..network.graph import Network
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from .ret import RetMode, solve_ret
from .scheduler import Scheduler

__all__ = ["Proposal", "NegotiationRound", "NegotiationSession", "auto_negotiate"]

Node = Hashable


@dataclass(frozen=True)
class Proposal:
    """The controller's offer to one user.

    Exactly one of ``size`` / ``end`` differs from the original request
    (depending on which action the round proposed).

    Attributes
    ----------
    job_id:
        The request the proposal refers to.
    size:
        Proposed (possibly reduced) size.
    end:
        Proposed (possibly extended) end time.
    kind:
        ``"reduce_size"`` or ``"extend_end"``.
    """

    job_id: int | str
    size: float
    end: float
    kind: str


@dataclass
class NegotiationRound:
    """One proposal/response exchange."""

    index: int
    kind: str
    proposals: dict
    responses: dict = field(default_factory=dict)
    applied: bool = False


class NegotiationSession:
    """A multi-round negotiation over an overloaded request set.

    Parameters
    ----------
    network:
        The wavelength-switched network.
    jobs:
        The originally submitted requests.
    k_paths, alpha, slice_length:
        Scheduling parameters (forwarded to the underlying algorithms).
    """

    def __init__(
        self,
        network: Network,
        jobs: JobSet,
        k_paths: int = 4,
        alpha: float = 0.1,
        slice_length: float = 1.0,
    ) -> None:
        if len(jobs) == 0:
            raise ValidationError("nothing to negotiate over an empty job set")
        self.network = network
        self.k_paths = k_paths
        self.alpha = alpha
        self.slice_length = slice_length
        self._scheduler = Scheduler(
            network, k_paths=k_paths, alpha=alpha, slice_length=slice_length
        )
        self._current = jobs
        self._withdrawn: list[Job] = []
        self.rounds: list[NegotiationRound] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def current_jobs(self) -> JobSet:
        """The request set as it stands after all applied rounds."""
        return self._current

    @property
    def withdrawn(self) -> tuple[Job, ...]:
        """Requests whose users walked away."""
        return tuple(self._withdrawn)

    def zstar(self) -> float:
        """Stage-1 throughput of the current set (inf when empty)."""
        if len(self._current) == 0:
            return float("inf")
        result = self._scheduler.schedule(self._current)
        return result.zstar

    def admissible(self, threshold: float = 1.0) -> bool:
        """Whether every current request fits in full (``Z* >= threshold``)."""
        return self.zstar() >= threshold - 1e-9

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------
    def propose_size_reduction(self) -> NegotiationRound:
        """Action (ii): offer each user the guaranteed size (Remark 2)."""
        self._check_no_open_round()
        result = self._scheduler.schedule(self._current)
        guaranteed = result.guaranteed_sizes("lpdar")
        proposals = {
            job.id: Proposal(
                job_id=job.id,
                size=float(max(guaranteed[i], 0.0)),
                end=job.end,
                kind="reduce_size",
            )
            for i, job in enumerate(self._current)
        }
        round_ = NegotiationRound(
            index=len(self.rounds), kind="reduce_size", proposals=proposals
        )
        self.rounds.append(round_)
        return round_

    def propose_deadline_extension(
        self, b_max: float = 10.0, delta: float = 0.1, mode: RetMode = "end_time"
    ) -> NegotiationRound:
        """Action (iii): offer the RET-extended end times (Algorithm 2)."""
        self._check_no_open_round()
        ret = solve_ret(
            self.network,
            self._current,
            slice_length=self.slice_length,
            k_paths=self.k_paths,
            b_max=b_max,
            delta=delta,
            mode=mode,
        )
        proposals = {
            job.id: Proposal(
                job_id=job.id,
                size=job.size,
                end=float(extended.end),
                kind="extend_end",
            )
            for job, extended in zip(self._current, ret.structure.jobs)
        }
        round_ = NegotiationRound(
            index=len(self.rounds), kind="extend_end", proposals=proposals
        )
        self.rounds.append(round_)
        return round_

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def respond(
        self,
        job_id: int | str,
        accept: bool = True,
        withdraw: bool = False,
        counter_size: float | None = None,
        counter_end: float | None = None,
    ) -> None:
        """Record one user's decision on the open round's proposal.

        ``accept=True`` takes the proposal as offered; ``withdraw=True``
        pulls the request entirely; a counter (size and/or end) replaces
        the proposal's terms.  ``accept=False`` with no counter keeps
        the *original* request unchanged (decline).
        """
        round_ = self._open_round()
        if job_id not in round_.proposals:
            raise ValidationError(f"no proposal outstanding for job {job_id!r}")
        if job_id in round_.responses:
            raise ValidationError(f"job {job_id!r} already responded this round")
        if withdraw and (counter_size is not None or counter_end is not None):
            raise ValidationError("a withdrawal cannot carry counter terms")
        round_.responses[job_id] = {
            "accept": bool(accept) and not withdraw,
            "withdraw": bool(withdraw),
            "counter_size": counter_size,
            "counter_end": counter_end,
        }

    def apply_responses(self, default_accept: bool = True) -> JobSet:
        """Fold the open round's responses into a new request set.

        Users who did not respond accept the proposal when
        ``default_accept`` (the paper's renegotiation presumes consent),
        otherwise they keep their original request.
        """
        round_ = self._open_round()
        new_jobs: list[Job] = []
        for job in self._current:
            proposal = round_.proposals[job.id]
            response = round_.responses.get(
                job.id,
                {"accept": default_accept, "withdraw": False,
                 "counter_size": None, "counter_end": None},
            )
            if response["withdraw"]:
                self._withdrawn.append(job)
                continue
            size, end = job.size, job.end
            if response["accept"]:
                size, end = proposal.size, proposal.end
            if response["counter_size"] is not None:
                size = float(response["counter_size"])
            if response["counter_end"] is not None:
                end = float(response["counter_end"])
            if size <= 1e-9:
                # A zero-size grant is a rejection in disguise.
                self._withdrawn.append(job)
                continue
            new_jobs.append(
                Job(
                    id=job.id,
                    source=job.source,
                    dest=job.dest,
                    size=size,
                    start=job.start,
                    end=end,
                    arrival=min(job.arrival, job.start),
                    weight=job.weight,
                )
            )
        round_.applied = True
        self._current = JobSet(new_jobs)
        return self._current

    # ------------------------------------------------------------------
    def _open_round(self) -> NegotiationRound:
        if not self.rounds or self.rounds[-1].applied:
            raise ValidationError(
                "no open round; call propose_size_reduction() or "
                "propose_deadline_extension() first"
            )
        return self.rounds[-1]

    def _check_no_open_round(self) -> None:
        if self.rounds and not self.rounds[-1].applied:
            raise ValidationError(
                "the previous round is still open; apply_responses() first"
            )


def auto_negotiate(
    session: NegotiationSession,
    strategy: str = "reduce_then_extend",
    max_rounds: int = 4,
    b_max: float = 10.0,
) -> JobSet:
    """Drive a session to convergence with compliant users.

    Models the happy path of the paper's negotiation loop: every user
    accepts every proposal.  ``strategy`` picks which actions the
    controller proposes:

    * ``"reduce_then_extend"`` — a size-reduction round, then deadline
      extensions if still inadmissible;
    * ``"reduce"`` / ``"extend"`` — only that action, repeated.

    Returns the final (admissible) request set; raises
    :class:`ValidationError` if ``max_rounds`` is exhausted without
    convergence (which, with compliant users, indicates an instance no
    proposal can fix — e.g. a job with no usable window at any ``b``).
    """
    if strategy not in ("reduce_then_extend", "reduce", "extend"):
        raise ValidationError(f"unknown strategy {strategy!r}")
    for round_index in range(max_rounds):
        if session.admissible():
            return session.current_jobs
        if strategy == "reduce" or (
            strategy == "reduce_then_extend" and round_index == 0
        ):
            session.propose_size_reduction()
        else:
            session.propose_deadline_extension(b_max=b_max)
        session.apply_responses()
    if session.admissible():
        return session.current_jobs
    raise ValidationError(
        f"negotiation did not converge in {max_rounds} rounds "
        f"(Z* = {session.zstar():.3f})"
    )
