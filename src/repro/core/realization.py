"""Wavelength realization: from counts to concrete lambda indices.

The paper's decision variables are wavelength *counts* ``x_i(p, j)``;
deploying a schedule on a real wavelength-switched network additionally
requires choosing *which* wavelengths (lambda indices) each grant uses on
each link.  The paper implicitly assumes full wavelength conversion at
every node (any lambda in, any lambda out), under which counts are all
that matter.  This module makes that final step explicit:

* ``continuity="converters"`` — full conversion (the paper's implicit
  model): each link of a path picks its lambdas independently,
  first-fit.  Always succeeds for a capacity-feasible schedule.
* ``continuity="strict"`` — no converters: a grant must ride the *same*
  lambda indices on every link of its path (the classic wavelength-
  continuity constraint).  First-fit may fail even for count-feasible
  schedules; failures are reported per grant so callers can quantify
  how many converters a deployment would need.

The gap between the two modes is itself a result: it measures how much
the paper's model leans on wavelength conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

import numpy as np

from ..errors import ValidationError
from ..lp.model import ProblemStructure

__all__ = ["LambdaGrant", "RealizationResult", "realize_schedule"]

Node = Hashable


@dataclass(frozen=True)
class LambdaGrant:
    """Concrete lambdas for one (job, path, slice) grant.

    Attributes
    ----------
    job_id:
        The job holding the grant.
    path:
        Node sequence of the granted path.
    slice_index:
        The time slice.
    lambdas_per_edge:
        Tuple (one entry per path hop) of tuples of lambda indices used
        on that edge.  Under strict continuity all entries are equal.
    """

    job_id: int | str
    path: tuple[Node, ...]
    slice_index: int
    lambdas_per_edge: tuple[tuple[int, ...], ...]

    @property
    def wavelengths(self) -> int:
        return len(self.lambdas_per_edge[0])

    @property
    def is_continuous(self) -> bool:
        """True when every hop uses the same lambda set."""
        first = set(self.lambdas_per_edge[0])
        return all(set(e) == first for e in self.lambdas_per_edge)


@dataclass(frozen=True)
class RealizationResult:
    """Outcome of realizing a whole assignment.

    Attributes
    ----------
    grants:
        Successfully realized grants.
    failures:
        ``(job_id, path, slice_index, wavelengths)`` tuples that could
        not be realized under strict continuity (never non-empty in
        converter mode).
    mode:
        The continuity mode used.
    """

    grants: tuple[LambdaGrant, ...]
    failures: tuple[tuple, ...]
    mode: str

    @property
    def fully_realized(self) -> bool:
        return not self.failures

    def continuity_rate(self) -> float:
        """Share of realized grants that happen to be lambda-continuous.

        In converter mode this measures how often first-fit produced a
        continuous assignment *for free*; in strict mode it is 1.0 by
        construction (over the successes).
        """
        if not self.grants:
            return float("nan")
        return float(np.mean([g.is_continuous for g in self.grants]))


def realize_schedule(
    structure: ProblemStructure,
    x: np.ndarray,
    continuity: str = "converters",
) -> RealizationResult:
    """Assign concrete lambda indices to an integer schedule.

    Parameters
    ----------
    structure:
        The problem the assignment lives in.
    x:
        Capacity-feasible non-negative *integer* assignment.
    continuity:
        ``"converters"`` (paper model, always succeeds) or ``"strict"``
        (wavelength continuity; may record failures).

    Notes
    -----
    Grants are processed slice-major in job order (the same order as
    Algorithm 1), first-fit from the lowest lambda index.  Each edge has
    lambdas ``0 .. C_e(j) - 1`` available per slice.
    """
    if continuity not in ("converters", "strict"):
        raise ValidationError(
            f"unknown continuity mode {continuity!r}; "
            "pick 'converters' or 'strict'"
        )
    x = np.asarray(x, dtype=float)
    if x.shape != (structure.num_cols,):
        raise ValidationError(
            f"x must have shape ({structure.num_cols},), got {x.shape}"
        )
    if np.any(x < 0) or np.any(np.abs(x - np.rint(x)) > 1e-9):
        raise ValidationError("realization needs a non-negative integer schedule")
    if structure.capacity_violation(x) > 1e-9:
        raise ValidationError("schedule violates capacity; nothing to realize")

    capacity = structure.capacity_grid().astype(int)
    # free[e][j] = sorted list of free lambda indices on edge e, slice j.
    free: dict[tuple[int, int], list[int]] = {}

    def free_lambdas(edge: int, slice_index: int) -> list[int]:
        key = (edge, slice_index)
        if key not in free:
            free[key] = list(range(capacity[edge, slice_index]))
        return free[key]

    grants: list[LambdaGrant] = []
    failures: list[tuple] = []

    order = np.lexsort(
        (structure.col_path, structure.col_job, structure.col_slice)
    )
    for c in order:
        count = int(round(x[c]))
        if count <= 0:
            continue
        i = int(structure.col_job[c])
        j = int(structure.col_slice[c])
        path = structure.paths[i][int(structure.col_path[c])]
        edges = path.edge_ids

        if continuity == "strict":
            common = set(free_lambdas(edges[0], j))
            for e in edges[1:]:
                common &= set(free_lambdas(e, j))
            if len(common) < count:
                failures.append(
                    (structure.jobs[i].id, path.nodes, j, count)
                )
                continue
            chosen = tuple(sorted(common)[:count])
            for e in edges:
                pool = free_lambdas(e, j)
                for lam in chosen:
                    pool.remove(lam)
            per_edge = tuple(chosen for _ in edges)
        else:
            per_edge_list = []
            for e in edges:
                pool = free_lambdas(e, j)
                # Capacity feasibility guarantees enough free lambdas.
                chosen = tuple(pool[:count])
                del pool[:count]
                per_edge_list.append(chosen)
            per_edge = tuple(per_edge_list)

        grants.append(
            LambdaGrant(
                job_id=structure.jobs[i].id,
                path=path.nodes,
                slice_index=j,
                lambdas_per_edge=per_edge,
            )
        )

    return RealizationResult(
        grants=tuple(grants), failures=tuple(failures), mode=continuity
    )
