"""LPDAR: the paper's heuristic for integer wavelength assignment.

Standard MIP solvers cannot handle the stage-2 / SUB-RET integer programs
at research-network scale, so the paper rounds the LP relaxation in two
steps:

1. **LPD** (*Linear Programming-Discretized*): truncate every fractional
   ``x_i(p, j)`` down to the nearest integer.  Always capacity-feasible,
   but can discard a large share of the assigned bandwidth when links
   carry few wavelengths.
2. **LPDAR** (*... with Adjusted Rates*): Algorithm 1 — walk every
   (slice, job, path) triple, measure the path's remaining wavelengths
   ``RB_p = min_{e in p} RB_e``, grant them to the path and debit every
   edge on it.

Besides the paper's visitation order this module implements two variants
used by the ablation benchmarks: *deficit-first* (within each slice,
serve the job furthest from completing first, and never grant a path more
than the job still needs) and *random* order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..errors import ValidationError
from ..lp.model import ProblemStructure
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["GreedyOrder", "LpdarResult", "discretize", "greedy_adjust", "lpdar"]

GreedyOrder = Literal["paper", "deficit_first", "random"]

#: Fractional values within this distance below an integer round *up*;
#: protects against solver noise like 2.9999999996 flooring to 2.
DISCRETIZE_TOL = 1e-7


def discretize(x: np.ndarray, tol: float = DISCRETIZE_TOL) -> np.ndarray:
    """LPD step: truncate a fractional assignment to integers.

    Values are floored after adding ``tol`` so that near-integers produced
    by floating-point solver noise are not knocked down a full unit.
    """
    x = np.asarray(x, dtype=float)
    if np.any(x < -tol):
        raise ValidationError("assignment has negative entries")
    return np.floor(np.maximum(x, 0.0) + tol)


def greedy_adjust(
    structure: ProblemStructure,
    x_int: np.ndarray,
    order: GreedyOrder = "paper",
    targets: np.ndarray | None = None,
    cap_at_target: bool = False,
    rng: np.random.Generator | None = None,
    telemetry: Telemetry | None = None,
) -> np.ndarray:
    """Algorithm 1: grant leftover wavelengths to paths, slice by slice.

    Parameters
    ----------
    structure:
        The problem the assignment lives in.
    x_int:
        Integer assignment (typically the LPD truncation).  Not modified.
    order:
        Visitation order of jobs within a slice.  ``"paper"`` follows the
        paper exactly (job index order); ``"deficit_first"`` sorts jobs by
        remaining unmet demand, largest first, and skips completed jobs;
        ``"random"`` shuffles per slice (needs ``rng``).
    targets:
        Per-job normalized volume targets, used by ``deficit_first``
        ordering and by ``cap_at_target``.  Defaults to the jobs' demands
        ``d_i`` — the natural target for SUB-RET, where delivering more
        than ``D_i`` is useless.
    cap_at_target:
        When True, never grant a path more wavelengths than the job's
        remaining deficit requires (leaves the surplus to later paths and
        jobs).  The paper's Algorithm 1 does not cap; keep False for a
        faithful run.
    rng:
        Randomness source for ``order="random"``.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; the pass is timed under
        a ``"greedy_adjust"`` span and a ``greedy_adjust`` record counts
        the (slice, job, path) triples visited and wavelengths granted.

    Returns
    -------
    numpy.ndarray
        A new integer assignment, entrywise ``>= x_int``, that never
        exceeds any link capacity.
    """
    x = np.asarray(x_int, dtype=float)
    if x.shape != (structure.num_cols,):
        raise ValidationError(
            f"x_int must have shape ({structure.num_cols},), got {x.shape}"
        )
    if np.any(np.abs(x - np.rint(x)) > 1e-9) or np.any(x < 0):
        raise ValidationError("greedy_adjust needs a non-negative integer input")
    if order == "random" and rng is None:
        raise ValidationError('order="random" requires an rng')
    if order not in ("paper", "deficit_first", "random"):
        raise ValidationError(f"unknown greedy order {order!r}")

    telemetry = telemetry or NULL_TELEMETRY
    visited = 0
    grants_made = 0
    granted_wavelengths = 0
    with telemetry.span("greedy_adjust"):
        x = x.copy()
        residual = structure.residual_capacity(x)
        if residual.min(initial=0.0) < -1e-9:
            raise ValidationError("input assignment already violates capacity")
        residual = np.rint(np.maximum(residual, 0.0)).astype(np.int64)

        num_jobs = len(structure.jobs)
        if targets is None:
            targets = structure.demands
        else:
            targets = np.asarray(targets, dtype=float)
            if targets.shape != (num_jobs,):
                raise ValidationError(
                    f"targets must have shape ({num_jobs},), got {targets.shape}"
                )
        deficits = targets - structure.delivered(x)

        first = structure.first_slice
        span = structure.span
        offsets = structure.job_offset
        lengths = structure.grid.lengths
        path_edges = [
            [np.asarray(p.edge_ids, dtype=np.int64) for p in structure.paths[i]]
            for i in range(num_jobs)
        ]

        for j in range(structure.grid.num_slices):
            # Jobs whose window admits slice j.
            active = np.nonzero((first <= j) & (j < first + span))[0]
            if active.size == 0:
                continue
            if order == "deficit_first":
                active = active[np.argsort(-deficits[active], kind="stable")]
            elif order == "random":
                active = rng.permutation(active)
            len_j = float(lengths[j])
            for i in active:
                if cap_at_target and deficits[i] <= 1e-12:
                    continue
                base = int(offsets[i]) + (j - int(first[i]))
                sp_i = int(span[i])
                for p, edges in enumerate(path_edges[i]):
                    visited += 1
                    grant = int(residual[edges, j].min())
                    if grant <= 0:
                        continue
                    if cap_at_target:
                        needed = int(np.ceil(deficits[i] / len_j - 1e-12))
                        grant = min(grant, needed)
                        if grant <= 0:
                            continue
                    x[base + p * sp_i] += grant
                    residual[edges, j] -= grant
                    deficits[i] -= grant * len_j
                    grants_made += 1
                    granted_wavelengths += grant
    telemetry.record(
        "greedy_adjust",
        order=order,
        visited_triples=visited,
        grants=grants_made,
        granted_wavelengths=granted_wavelengths,
    )
    telemetry.count("greedy_visited_triples", visited)
    telemetry.count("greedy_granted_wavelengths", granted_wavelengths)
    return x


@dataclass(frozen=True)
class LpdarResult:
    """The three assignments the paper compares (all same shape).

    Attributes
    ----------
    x_lp:
        The fractional LP-relaxation optimum (upper-bound benchmark).
    x_lpd:
        LPD: the truncated integer assignment.
    x_lpdar:
        LPDAR: LPD after the Algorithm 1 greedy adjustment.
    """

    x_lp: np.ndarray
    x_lpd: np.ndarray
    x_lpdar: np.ndarray


def lpdar(
    structure: ProblemStructure,
    x_lp: np.ndarray,
    order: GreedyOrder = "paper",
    targets: np.ndarray | None = None,
    cap_at_target: bool = False,
    rng: np.random.Generator | None = None,
    telemetry: Telemetry | None = None,
) -> LpdarResult:
    """Run the full LP -> LPD -> LPDAR pipeline on a fractional solution.

    ``telemetry`` (optional) times the truncation under a
    ``"discretize"`` span and forwards to :func:`greedy_adjust`.
    """
    telemetry = telemetry or NULL_TELEMETRY
    with telemetry.span("discretize"):
        x_lpd = discretize(x_lp)
    x_lpdar = greedy_adjust(
        structure,
        x_lpd,
        order=order,
        targets=targets,
        cap_at_target=cap_at_target,
        rng=rng,
        telemetry=telemetry,
    )
    return LpdarResult(
        x_lp=np.asarray(x_lp, dtype=float), x_lpd=x_lpd, x_lpdar=x_lpdar
    )
