"""Core algorithms: stage 1/2, LPDAR, RET, admission control, metrics."""

from .admission import (
    AdmissionDecision,
    admit_greedy,
    admit_max_prefix,
    by_arrival,
    by_laxity,
    by_size_ascending,
    by_size_descending,
)
from .baselines import (
    BaselineGrant,
    BaselineResult,
    average_rate_reservation,
    malleable_reservation,
)
from .exact import solve_stage2_exact, solve_subret_exact
from .lpdar import GreedyOrder, LpdarResult, discretize, greedy_adjust, lpdar
from .metrics import (
    COMPLETION_TOL,
    jains_fairness_index,
    average_end_time,
    completion_slices,
    fraction_finished,
    mean_link_utilization,
    normalized_throughput,
    per_slice_delivery,
)
from .negotiation import (
    NegotiationRound,
    NegotiationSession,
    Proposal,
    auto_negotiate,
)
from .realization import LambdaGrant, RealizationResult, realize_schedule
from .ret import (
    RetMode,
    RetResult,
    build_subret_lp,
    quick_finish_gamma,
    solve_ret,
    solve_subret_lp,
)
from .scheduler import ScheduleResult, Scheduler, WavelengthGrant
from .stage2 import Stage2Result, build_stage2_lp, objective_weights, solve_stage2_lp
from .throughput import Stage1Result, build_stage1_lp, solve_stage1

__all__ = [
    "Stage1Result",
    "build_stage1_lp",
    "solve_stage1",
    "Stage2Result",
    "build_stage2_lp",
    "solve_stage2_lp",
    "objective_weights",
    "GreedyOrder",
    "LpdarResult",
    "discretize",
    "greedy_adjust",
    "lpdar",
    "RetResult",
    "build_subret_lp",
    "solve_subret_lp",
    "solve_ret",
    "quick_finish_gamma",
    "solve_stage2_exact",
    "solve_subret_exact",
    "AdmissionDecision",
    "admit_max_prefix",
    "admit_greedy",
    "BaselineGrant",
    "BaselineResult",
    "malleable_reservation",
    "average_rate_reservation",
    "RetMode",
    "LambdaGrant",
    "RealizationResult",
    "realize_schedule",
    "NegotiationSession",
    "NegotiationRound",
    "Proposal",
    "auto_negotiate",
    "by_arrival",
    "by_laxity",
    "by_size_ascending",
    "by_size_descending",
    "Scheduler",
    "ScheduleResult",
    "WavelengthGrant",
    "COMPLETION_TOL",
    "jains_fairness_index",
    "average_end_time",
    "completion_slices",
    "fraction_finished",
    "mean_link_utilization",
    "normalized_throughput",
    "per_slice_delivery",
]
