"""Admission control policies (paper Section II-A/II-B and footnote 1).

When the network is overloaded (``Z* <= 1``) the controller can take
three actions, each captured by a policy here:

* **Reject** (action i, footnote 1): order the jobs by an administrative
  sequence and binary-search the longest prefix whose stage-1 throughput
  still meets a threshold; the rest are rejected.
* **Reduce sizes** (action ii): admit everyone, scale demands by the
  per-job stage-2 throughput ``Z_i`` — the sizes the network *can*
  guarantee by the requested end times.
* **Extend end times** (action iii): admit everyone and stretch all end
  times by the smallest ``(1 + b)`` under which every full job completes
  (Algorithm 2).

The binary search in :func:`admit_max_prefix` is sound because ``Z*`` is
monotone non-increasing in the job set: dropping jobs (and their
coupling constraint (2)) can only raise the achievable common factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from ..engine.engine import ModelEngine
from ..errors import BudgetExceededError, ValidationError
from ..lp.solver import SolveBudget
from ..network.graph import Network
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from .throughput import build_stage1_lp, solve_stage1

__all__ = [
    "by_arrival",
    "by_size_descending",
    "by_size_ascending",
    "by_laxity",
    "admit_max_prefix",
    "admit_greedy",
    "AdmissionDecision",
]


# ----------------------------------------------------------------------
# Sequencing policies (the "administrative policy" of footnote 1)
# ----------------------------------------------------------------------
def by_arrival(job: Job) -> tuple:
    """First-come first-served ordering key."""
    return (job.arrival, str(job.id))


def by_size_descending(job: Job) -> tuple:
    """Large science flows first (the paper's default preference)."""
    return (-job.size, str(job.id))


def by_size_ascending(job: Job) -> tuple:
    """Small jobs first (finish many jobs at slight cost to large ones)."""
    return (job.size, str(job.id))


def by_laxity(job: Job) -> tuple:
    """Tightest jobs first: least window slack per unit of demand."""
    return (job.duration / job.size, str(job.id))


@dataclass(frozen=True)
class AdmissionDecision:
    """Result of an admission-control pass.

    Attributes
    ----------
    admitted:
        Jobs accepted (possibly re-ordered by the sequencing policy).
    rejected:
        Jobs turned away.
    zstar:
        Stage-1 throughput of the admitted set (``inf`` when everything
        was rejected, vacuously feasible).
    degraded:
        True when a :class:`~repro.lp.solver.SolveBudget` ran out before
        the search finished; the decision is still sound (every admitted
        prefix was proven feasible before the budget died) but may admit
        fewer jobs than an unhurried pass would.
    """

    admitted: JobSet
    rejected: JobSet
    zstar: float
    degraded: bool = False

    @property
    def num_admitted(self) -> int:
        return len(self.admitted)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)


def _admission_engine(
    network: Network, k_paths: int, engine: ModelEngine | None
) -> ModelEngine:
    """Validate a caller-shared engine, or mint a local one.

    A shared engine (the simulator passes its per-run instance) lets the
    prefix search's structures patch from — and donate back to — the
    run's epoch structures instead of starting from an empty cache.
    """
    if engine is None:
        return ModelEngine(network, k_paths)
    if engine.network is not network:
        raise ValidationError(
            "engine is bound to a different network than the admission call's"
        )
    if engine.k_paths != k_paths:
        raise ValidationError(
            f"engine resolves k_paths={engine.k_paths} but admission was "
            f"asked for k_paths={k_paths}"
        )
    return engine


def admit_max_prefix(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid,
    k_paths: int = 4,
    threshold: float = 1.0,
    key: Callable[[Job], tuple] = by_arrival,
    engine: ModelEngine | None = None,
    budget: SolveBudget | None = None,
    path_sets: dict | None = None,
) -> AdmissionDecision:
    """Footnote-1 rejection: longest admissible prefix by binary search.

    Jobs are ordered by ``key``; the returned ``admitted`` set is the
    longest prefix whose stage-1 maximum concurrent throughput is at
    least ``threshold`` (1.0 = "all deadlines can be met in full").

    Jobs that are individually unschedulable (no path, or no whole slice
    inside their window) are rejected outright before the search, since
    they force ``Z* = 0`` for any prefix containing them.

    ``engine`` optionally shares a caller's :class:`ModelEngine` (bound
    to the same network / ``k_paths``), so the search's prefix
    structures reuse — and feed — the caller's caches.  ``path_sets``
    optionally overrides the engine's path resolution (the simulator
    passes fault-pruned sets while links are down); ``budget`` bounds
    the search's total wall time — when it expires mid-search, the
    longest prefix already *proven* admissible is returned with
    ``degraded=True`` instead of letting the probe blow the epoch
    deadline.
    """
    if threshold <= 0:
        raise ValidationError(f"threshold must be positive, got {threshold}")
    ordered = jobs.sorted_by(key)
    # One engine for the whole search: paths resolve once and prefix
    # structures share layout fragments across probes.
    engine = _admission_engine(network, k_paths, engine)
    if path_sets is None:
        path_sets = engine.topology.path_sets(ordered.od_pairs())

    schedulable: list[Job] = []
    rejected: list[Job] = []
    for job in ordered:
        has_path = bool(path_sets.get((job.source, job.dest)))
        has_slice = len(grid.window_slices(job.start, job.end)) > 0
        (schedulable if has_path and has_slice else rejected).append(job)

    def prefix_zstar(count: int) -> float:
        if count == 0:
            return float("inf")
        structure = engine.structure(
            JobSet(schedulable[:count]), grid, path_sets=path_sets
        )
        solution = engine.cached_solve(
            structure,
            "stage1",
            lambda: build_stage1_lp(structure),
            budget=budget,
        )
        return float(solution.x[-1])

    # Binary search the largest count with Z*(prefix) >= threshold,
    # tracking (lo, Z*(lo)) so the budget-exhausted exit below never
    # needs another solve to report the proven prefix.
    lo, zstar_lo = 0, float("inf")
    hi = len(schedulable)
    degraded = False
    try:
        z = prefix_zstar(hi)
        if z >= threshold:
            lo, zstar_lo = hi, z
        else:
            while hi - lo > 1:
                mid = (lo + hi) // 2
                z = prefix_zstar(mid)
                if z >= threshold:
                    lo, zstar_lo = mid, z
                else:
                    hi = mid
    except BudgetExceededError:
        # Out of time mid-search: commit the longest prefix already
        # proven admissible.  Sound (monotonicity) but possibly short.
        degraded = True
    admitted = JobSet(schedulable[:lo])
    rejected.extend(schedulable[lo:])
    return AdmissionDecision(
        admitted=admitted,
        rejected=JobSet(rejected),
        zstar=zstar_lo,
        degraded=degraded,
    )


def admit_greedy(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid,
    k_paths: int = 4,
    threshold: float = 1.0,
    key: Callable[[Job], tuple] = by_size_descending,
    engine: ModelEngine | None = None,
    budget: SolveBudget | None = None,
    path_sets: dict | None = None,
) -> AdmissionDecision:
    """Greedy non-prefix admission (the footnote's "future work").

    The footnote-1 algorithm rejects everything *after* the first job
    that does not fit, even if later, smaller jobs would.  This variant
    walks the ordered sequence and keeps each job iff the accepted set
    plus that job still has ``Z* >= threshold`` — one stage-1 solve per
    job instead of ``O(log n)``, but it can only admit a superset-value
    of what any prefix achieves under the same ordering.

    Soundness rests on the same monotonicity as the prefix search:
    dropping a job never lowers ``Z*``, so an accepted set stays
    feasible as rejected jobs are skipped.

    ``budget`` and ``path_sets`` behave as in :func:`admit_max_prefix`:
    a mid-walk budget expiry keeps the already-accepted set and rejects
    every job not yet probed, with ``degraded=True``.
    """
    if threshold <= 0:
        raise ValidationError(f"threshold must be positive, got {threshold}")
    ordered = jobs.sorted_by(key)
    # The candidate sets all share paths and per-job layout fragments;
    # an engine makes the per-job stage-1 solves reuse both.
    engine = _admission_engine(network, k_paths, engine)
    if path_sets is None:
        path_sets = engine.topology.path_sets(ordered.od_pairs())

    accepted: list[Job] = []
    rejected: list[Job] = []
    zstar = float("inf")
    degraded = False
    for job in ordered:
        has_path = bool(path_sets.get((job.source, job.dest)))
        has_slice = len(grid.window_slices(job.start, job.end)) > 0
        if not (has_path and has_slice):
            rejected.append(job)
            continue
        if degraded:
            rejected.append(job)
            continue
        candidate = JobSet(accepted + [job])
        structure = engine.structure(candidate, grid, path_sets=path_sets)
        try:
            z = solve_stage1(structure, budget=budget).zstar
        except BudgetExceededError:
            # No time left to probe: everything not yet proven in is out.
            degraded = True
            rejected.append(job)
            continue
        if z >= threshold:
            accepted.append(job)
            zstar = z
        else:
            rejected.append(job)
    return AdmissionDecision(
        admitted=JobSet(accepted),
        rejected=JobSet(rejected),
        zstar=zstar,
        degraded=degraded,
    )
