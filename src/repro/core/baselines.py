"""Related-work baseline schedulers (paper Sections I and IV).

The paper positions its optimization framework against simpler advance-
reservation schemes from the literature, arguing that multipath,
time-varying, periodically re-optimized wavelength assignment "will
translate into much greater resource efficiency."  To make that claim
measurable, this module implements two representative baselines in the
style of the cited related work:

* :func:`malleable_reservation` — after Burchard & Heiss [25]: for each
  job, one at a time, "check every possible interval between the
  requested start and end times ... and try to find a path that can
  accommodate the entire job on that interval."  Single path, constant
  wavelength count, contiguous interval, no re-allocation of existing
  reservations.
* :func:`average_rate_reservation` — after Munir et al. [23]: admission
  based on the job's *average* bandwidth requirement over its whole
  window, checked link by link on one path; admitted jobs hold a
  constant reservation for the entire window.

Both process jobs in arrival order against a shared integer residual
(first-come first-served), reject what does not fit, and never touch
earlier reservations — exactly the rigidity the paper's framework
removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

from ..errors import ValidationError
from ..network.capacity import CapacityProfile
from ..network.graph import Network
from ..network.paths import Path, build_path_sets
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet

__all__ = ["BaselineGrant", "BaselineResult", "malleable_reservation", "average_rate_reservation"]

Node = Hashable


@dataclass(frozen=True)
class BaselineGrant:
    """One admitted reservation: a constant-rate block on a single path.

    Attributes
    ----------
    job_id:
        The admitted job.
    path:
        The single path the reservation rides on.
    first_slice, last_slice:
        Inclusive slice range of the reservation.
    wavelengths:
        Constant wavelength count held on every slice of the range.
    """

    job_id: int | str
    path: Path
    first_slice: int
    last_slice: int
    wavelengths: int

    @property
    def num_slices(self) -> int:
        return self.last_slice - self.first_slice + 1


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline admission pass over a job set.

    Attributes
    ----------
    grants:
        One grant per admitted job, in admission order.
    rejected:
        Jobs that found no feasible reservation.
    loads:
        Final ``(num_edges, num_slices)`` wavelength loads.
    grid:
        The time grid the loads refer to.
    """

    grants: tuple[BaselineGrant, ...]
    rejected: tuple[Job, ...]
    loads: np.ndarray
    grid: TimeGrid

    @property
    def num_admitted(self) -> int:
        return len(self.grants)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)

    def acceptance_rate(self) -> float:
        total = self.num_admitted + self.num_rejected
        return self.num_admitted / total if total else float("nan")

    def delivered_volume(self, jobs: JobSet, wavelength_rate: float) -> float:
        """Total volume moved: each admitted job delivers its full size."""
        admitted = {g.job_id for g in self.grants}
        return float(sum(j.size for j in jobs if j.id in admitted))

    def completion_slice(self, job: Job, wavelength_rate: float) -> int:
        """Slice on which ``job``'s cumulative delivery reaches its size."""
        for grant in self.grants:
            if grant.job_id == job.id:
                demand = job.size / wavelength_rate
                acc = 0.0
                for j in range(grant.first_slice, grant.last_slice + 1):
                    acc += grant.wavelengths * self.grid.length(j)
                    if acc >= demand - 1e-9:
                        return j
                return grant.last_slice
        raise ValidationError(f"job {job.id!r} was not admitted")


def _window_or_none(grid: TimeGrid, job: Job) -> range | None:
    window = grid.window_slices(job.start, job.end)
    return window if len(window) > 0 else None


def _initial_residual(
    network: Network, grid: TimeGrid, capacity_profile: CapacityProfile | None
) -> np.ndarray:
    if capacity_profile is not None:
        if capacity_profile.network is not network:
            raise ValidationError("capacity profile built for a different network")
        if capacity_profile.grid != grid:
            raise ValidationError("capacity profile built for a different grid")
        return capacity_profile.matrix.astype(np.int64).copy()
    return np.repeat(
        network.capacities()[:, None], grid.num_slices, axis=1
    ).astype(np.int64)


def malleable_reservation(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid,
    k_paths: int = 4,
    capacity_profile: CapacityProfile | None = None,
) -> BaselineResult:
    """First-come first-served malleable single-path reservations ([25]).

    For each job in arrival order, candidate intervals inside the window
    are scanned earliest-finish-first (ties: earlier start, i.e. longer
    interval needing fewer wavelengths).  The first (interval, path)
    pair whose bottleneck residual supports
    ``ceil(demand / interval_volume)`` constant wavelengths is reserved.
    """
    residual = _initial_residual(network, grid, capacity_profile)
    paths = build_path_sets(network, jobs.od_pairs(), k_paths)
    rate = network.wavelength_rate

    grants: list[BaselineGrant] = []
    rejected: list[Job] = []
    for job in jobs.sorted_by(lambda j: (j.arrival, str(j.id))):
        window = _window_or_none(grid, job)
        pset = paths.get((job.source, job.dest)) or []
        if window is None or not pset:
            rejected.append(job)
            continue
        demand = job.size / rate
        # Earliest finish first; then longest interval (fewest wavelengths).
        intervals = sorted(
            (
                (b, a)
                for b in range(window.start, window.stop)
                for a in range(window.start, b + 1)
            ),
            key=lambda ba: (ba[0], ba[1]),
        )
        grant = None
        for b, a in intervals:
            volume = float(grid.lengths[a : b + 1].sum())
            needed = int(np.ceil(demand / volume - 1e-12))
            for path in pset:
                edges = np.asarray(path.edge_ids, dtype=np.int64)
                if int(residual[np.ix_(edges, range(a, b + 1))].min()) >= needed:
                    grant = BaselineGrant(job.id, path, a, b, needed)
                    break
            if grant is not None:
                break
        if grant is None:
            rejected.append(job)
            continue
        edges = np.asarray(grant.path.edge_ids, dtype=np.int64)
        residual[
            np.ix_(edges, range(grant.first_slice, grant.last_slice + 1))
        ] -= grant.wavelengths
        grants.append(grant)

    loads = _initial_residual(network, grid, capacity_profile) - residual
    return BaselineResult(
        grants=tuple(grants),
        rejected=tuple(rejected),
        loads=loads.astype(float),
        grid=grid,
    )


def average_rate_reservation(
    network: Network,
    jobs: JobSet,
    grid: TimeGrid,
    capacity_profile: CapacityProfile | None = None,
) -> BaselineResult:
    """First-come first-served average-rate reservations ([23]-style).

    Each job's requirement is summarized by one number — the average
    wavelength count ``ceil(demand / window_volume)`` — and checked link
    by link on the single shortest path.  Admitted jobs hold that
    constant reservation across their *entire* window: no multipath, no
    time-varying rates, no packing into sub-intervals.
    """
    residual = _initial_residual(network, grid, capacity_profile)
    paths = build_path_sets(network, jobs.od_pairs(), 1)
    rate = network.wavelength_rate

    grants: list[BaselineGrant] = []
    rejected: list[Job] = []
    for job in jobs.sorted_by(lambda j: (j.arrival, str(j.id))):
        window = _window_or_none(grid, job)
        pset = paths.get((job.source, job.dest)) or []
        if window is None or not pset:
            rejected.append(job)
            continue
        path = pset[0]
        a, b = window.start, window.stop - 1
        volume = float(grid.lengths[a : b + 1].sum())
        needed = int(np.ceil(job.size / rate / volume - 1e-12))
        edges = np.asarray(path.edge_ids, dtype=np.int64)
        if int(residual[np.ix_(edges, range(a, b + 1))].min()) >= needed:
            residual[np.ix_(edges, range(a, b + 1))] -= needed
            grants.append(BaselineGrant(job.id, path, a, b, needed))
        else:
            rejected.append(job)

    loads = _initial_residual(network, grid, capacity_profile) - residual
    return BaselineResult(
        grants=tuple(grants),
        rejected=tuple(rejected),
        loads=loads.astype(float),
        grid=grid,
    )
