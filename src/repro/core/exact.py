"""Exact integer baselines for small instances.

The paper reports that optimal integer solutions were unobtainable with
standard solvers ("we will not be able to show those results") and falls
back to the LP relaxation as an upper bound.  For *small* instances,
HiGHS-MIP in SciPy can produce the true integer optimum, which lets this
reproduction quantify the LPDAR optimality gap directly — see
``benchmarks/bench_exact_gap.py`` and the EXACT experiment in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..lp.milp import solve_milp
from ..lp.model import ProblemStructure
from ..lp.solver import LPSolution
from .ret import build_subret_lp, quick_finish_gamma
from .stage2 import build_stage2_lp

__all__ = ["solve_stage2_exact", "solve_subret_exact"]


def solve_stage2_exact(
    structure: ProblemStructure,
    zstar: float,
    alpha: float = 0.1,
    weights: np.ndarray | None = None,
    time_limit: float | None = None,
) -> LPSolution:
    """True integer optimum of the stage-2 problem (eqs. (7)-(10)).

    Only for small instances (guarded by the MILP size limit).  Note the
    integer problem can be *infeasible* for small ``alpha`` even though
    its LP relaxation never is — exactly the situation the paper's
    Remark 1 addresses by increasing ``alpha``.
    """
    return solve_milp(
        build_stage2_lp(structure, zstar, alpha, weights), time_limit=time_limit
    )


def solve_subret_exact(
    structure: ProblemStructure,
    gamma: Callable[[np.ndarray], np.ndarray] = quick_finish_gamma,
    time_limit: float | None = None,
) -> LPSolution:
    """True integer optimum of SUB-RET (eqs. (14)-(16), (3), (10))."""
    return solve_milp(build_subret_lp(structure, gamma), time_limit=time_limit)
