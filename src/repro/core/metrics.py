"""Schedule-level metrics: completion, end times, utilization.

These operate on a :class:`~repro.lp.model.ProblemStructure` plus an
assignment vector and compute the quantities the paper's evaluation
section reports: normalized throughput (Figs. 1-2), fraction of jobs
finished and average end time (Section III-B, Fig. 4), and link
utilization.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..lp.model import ProblemStructure

__all__ = [
    "COMPLETION_TOL",
    "jains_fairness_index",
    "per_slice_delivery",
    "completion_slices",
    "fraction_finished",
    "average_end_time",
    "normalized_throughput",
    "mean_link_utilization",
]

#: A job counts as finished when it is within this normalized volume of
#: its demand (absorbs LP solver tolerance).
COMPLETION_TOL = 1e-6


def per_slice_delivery(structure: ProblemStructure, x: np.ndarray) -> np.ndarray:
    """Dense ``(num_jobs, num_slices)`` normalized volume per job and slice."""
    x = np.asarray(x, dtype=float)
    out = np.zeros((len(structure.jobs), structure.grid.num_slices))
    lengths = structure.grid.lengths
    for i in range(len(structure.jobs)):
        span = int(structure.span[i])
        first = int(structure.first_slice[i])
        block = x[structure.job_columns(i)].reshape(int(structure.num_paths[i]), span)
        out[i, first : first + span] = block.sum(axis=0) * lengths[first : first + span]
    return out


def completion_slices(
    structure: ProblemStructure, x: np.ndarray, tol: float = COMPLETION_TOL
) -> np.ndarray:
    """First slice index by which each job's demand is met, or ``-1``.

    A job completes on the first slice where its cumulative delivered
    volume reaches ``d_i`` (within ``tol``); unfinished jobs get ``-1``.
    """
    delivery = per_slice_delivery(structure, x)
    cumulative = np.cumsum(delivery, axis=1)
    reached = cumulative >= (structure.demands - tol)[:, None]
    out = np.full(len(structure.jobs), -1, dtype=np.int64)
    any_reached = reached.any(axis=1)
    out[any_reached] = np.argmax(reached[any_reached], axis=1)
    return out


def fraction_finished(
    structure: ProblemStructure, x: np.ndarray, tol: float = COMPLETION_TOL
) -> float:
    """Share of jobs whose full demand is delivered."""
    delivered = structure.delivered(np.asarray(x, dtype=float))
    return float(np.mean(delivered >= structure.demands - tol))


def average_end_time(
    structure: ProblemStructure,
    x: np.ndarray,
    tol: float = COMPLETION_TOL,
    require_all_finished: bool = False,
) -> float:
    """Average completion time over finished jobs, in slice counts.

    Matches Fig. 4's unit ("the number of time slices"): a job finishing
    on slice ``k`` (0-based) has end time ``k + 1``.  Unfinished jobs are
    excluded; with ``require_all_finished`` their presence raises instead.
    Returns ``nan`` when no job finished.
    """
    slices = completion_slices(structure, x, tol)
    finished = slices >= 0
    if require_all_finished and not finished.all():
        unfinished = [structure.jobs[i].id for i in np.nonzero(~finished)[0]]
        raise ValidationError(f"jobs not finished: {unfinished}")
    if not finished.any():
        return float("nan")
    return float(np.mean(slices[finished] + 1))


def normalized_throughput(
    structure: ProblemStructure, x: np.ndarray, x_reference: np.ndarray
) -> float:
    """Weighted throughput of ``x`` relative to a reference assignment.

    Figures 1-2 normalize LPD/LPDAR throughput by the LP value; pass the
    LP solution as ``x_reference``.
    """
    ref = structure.weighted_throughput(x_reference)
    if ref <= 0:
        raise ValidationError("reference assignment has zero throughput")
    return structure.weighted_throughput(x) / ref


def mean_link_utilization(structure: ProblemStructure, x: np.ndarray) -> float:
    """Average wavelength occupancy across all (edge, slice) pairs.

    Cells whose capacity is zero (e.g. full link outages in a
    :class:`~repro.network.capacity.CapacityProfile`) are excluded from
    the average — they carry no schedulable capacity to utilize.
    """
    loads = structure.link_loads(np.asarray(x, dtype=float))
    caps = structure.capacity_grid()
    usable = caps > 0
    if not usable.any():
        return 0.0
    return float(np.mean(loads[usable] / caps[usable]))


def jains_fairness_index(values: np.ndarray) -> float:
    """Jain's fairness index over per-job throughputs (or any shares).

    ``(sum z)^2 / (n * sum z^2)``: 1.0 when every job gets the same
    throughput, ``1/n`` when one job takes everything.  The natural
    scalar for the fairness dimension of the paper's stage-2 trade-off:
    lowering ``alpha`` raises the guaranteed floor and with it this
    index, at some cost in total throughput.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValidationError("need a non-empty 1-D array of values")
    if np.any(values < 0):
        raise ValidationError("fairness index needs non-negative values")
    total_sq = float(values.sum()) ** 2
    denom = values.size * float((values**2).sum())
    if denom == 0.0:
        return float("nan")
    return total_sq / denom
