"""Stage 2: weighted-throughput maximization with a fairness floor.

The stage-2 problem (paper eqs. (7)-(10)) maximizes the weighted
throughput ``sum_i w_i Z_i`` subject to the capacity and window
constraints and the fairness floor ``Z_i >= (1 - alpha) * Z*``, where
``Z*`` comes from stage 1.  With the paper's default size weights
(``w_i = D_i / sum D``) the objective reduces to total delivered volume,
normalized by total demand.

Per-job throughput ``Z_i`` (eq. (6)) is substituted out: the equality
(8) merely *defines* ``Z_i``, so the LP is formulated over the wavelength
variables alone with ``Z_i = delivered_i / d_i``.

The true stage-2 problem is an integer program; :func:`build_stage2_lp`
builds its LP relaxation (drop (10)), which is what LPDAR rounds.  The
relaxation is always feasible: the stage-1 optimum scaled to ``Z*``
satisfies the fairness floor with slack ``alpha * Z*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import (
    LinearProgram,
    LPSolution,
    SolveBudget,
    SolveResilience,
    solve_lp,
)
from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["Stage2Result", "build_stage2_lp", "solve_stage2_lp", "objective_weights"]


def objective_weights(
    structure: ProblemStructure, weights: np.ndarray | None = None
) -> np.ndarray:
    """Per-column objective coefficients for ``sum_i w_i Z_i``.

    ``weights`` are per-job; ``None`` selects the paper's size weights
    ``w_i = D_i / sum D`` (favouring large jobs, Section II-B.2).  Since
    ``Z_i = sum_c x_c LEN(c) / d_i``, the column coefficient is
    ``w_i * LEN(c) / d_i``.
    """
    num_jobs = len(structure.jobs)
    if weights is None:
        weights = structure.demands / structure.demands.sum()
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (num_jobs,):
            raise ValidationError(
                f"weights must have shape ({num_jobs},), got {weights.shape}"
            )
        if np.any(weights <= 0):
            raise ValidationError("all job weights must be positive")
    per_job = weights / structure.demands
    return per_job[structure.col_job] * structure.col_len


def build_stage2_lp(
    structure: ProblemStructure,
    zstar: float,
    alpha: float = 0.1,
    weights: np.ndarray | None = None,
) -> LinearProgram:
    """Assemble the LP relaxation of the stage-2 problem.

    Parameters
    ----------
    structure:
        Shared problem structure.
    zstar:
        Stage-1 maximum concurrent throughput.
    alpha:
        Fairness slack in ``[0, 1]``; each job is guaranteed
        ``Z_i >= (1 - alpha) * Z*`` (eq. (9)).
    weights:
        Optional per-job weights replacing the paper's size weighting
        (e.g. inverse sizes to favour small jobs, or user-specified
        importance levels).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValidationError(f"alpha must be in [0, 1], got {alpha}")
    if zstar < 0:
        raise ValidationError(f"zstar must be >= 0, got {zstar}")

    from ..engine.assembly import capacity_floor_blocks

    # Fairness rows: -delivered_i <= -(1 - alpha) * Z* * d_i.  The
    # stacked matrix is cached on the structure, so alpha escalations
    # re-assemble only the right-hand side.
    fairness_rhs = -(1.0 - alpha) * zstar * structure.demands
    a_ub, b_ub = capacity_floor_blocks(structure, fairness_rhs)
    return LinearProgram(
        objective=objective_weights(structure, weights),
        a_ub=a_ub,
        b_ub=b_ub,
        maximize=True,
    )


@dataclass(frozen=True)
class Stage2Result:
    """Outcome of a stage-2 LP solve.

    Attributes
    ----------
    x:
        Fractional optimal assignment (input to LPDAR).
    objective:
        Optimal weighted throughput of the relaxation (an upper bound on
        the integer optimum).
    zstar, alpha:
        The fairness parameters the problem was built with.
    solution:
        Raw LP solution.
    """

    x: np.ndarray
    objective: float
    zstar: float
    alpha: float
    solution: LPSolution

    def fairness_floor(self) -> float:
        """The per-job throughput floor ``(1 - alpha) * Z*``."""
        return (1.0 - self.alpha) * self.zstar


def solve_stage2_lp(
    structure: ProblemStructure,
    zstar: float,
    alpha: float = 0.1,
    weights: np.ndarray | None = None,
    telemetry: Telemetry | None = None,
    resilience: SolveResilience | None = None,
    budget: SolveBudget | None = None,
) -> Stage2Result:
    """Solve the stage-2 LP relaxation.

    ``telemetry`` (optional) times assembly and solve under a
    ``"stage2"`` span; ``resilience`` (optional) enables
    :func:`~repro.lp.solver.solve_lp`'s retry / fallback chain;
    ``budget`` (optional) forwards a
    :class:`~repro.lp.solver.SolveBudget` deadline to the solve.
    """
    telemetry = telemetry or NULL_TELEMETRY
    with telemetry.span("stage2"):
        problem = build_stage2_lp(structure, zstar, alpha, weights)
        solution = solve_lp(
            problem,
            telemetry=telemetry,
            label="stage2",
            resilience=resilience,
            budget=budget,
        )
    return Stage2Result(
        x=solution.x,
        objective=solution.objective,
        zstar=zstar,
        alpha=alpha,
        solution=solution,
    )
