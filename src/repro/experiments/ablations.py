"""Programmatic ablation experiments (this repo's additions to the paper).

Like :mod:`repro.experiments.figures`, each function returns an
:class:`~repro.experiments.figures.ExperimentResult` and registers under
a CLI-runnable name.  These probe the design choices the paper fixes by
fiat: the fairness slack ``alpha``, the allowed-path count, the greedy
visitation order, and the implicit full-wavelength-conversion model.
"""

from __future__ import annotations

import numpy as np

from ..core.lpdar import lpdar
from ..core.metrics import jains_fairness_index
from ..core.realization import realize_schedule
from ..core.stage2 import solve_stage2_lp
from ..core.throughput import solve_stage1
from ..engine import build_structure
from ..timegrid import TimeGrid
from ..workload import WorkloadConfig
from .figures import ExperimentResult, _timed
from .setup import calibrated_jobs, random_network, shared_path_sets

__all__ = ["ablation_alpha", "ablation_paths", "ablation_continuity"]

_CONTENDED = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)


def ablation_alpha(quick: bool = False, seed: int = 606) -> ExperimentResult:
    """ABL-ALPHA — fairness slack vs throughput and Jain's index."""
    num_nodes = 40 if quick else 100
    num_jobs = 60 if quick else 150
    network = random_network(num_nodes=num_nodes, seed=seed).with_wavelengths(2, 20.0)
    jobs = calibrated_jobs(
        network, num_jobs, seed=seed + 1, target_zstar=0.8, config=_CONTENDED
    )
    paths = shared_path_sets(network, jobs)
    grid = TimeGrid.covering(jobs.max_end())
    structure = build_structure(network, jobs, grid, 4, path_sets=paths)
    zstar = solve_stage1(structure).zstar
    alphas = (0.0, 0.1, 0.4) if quick else (0.0, 0.05, 0.1, 0.2, 0.4)

    def rows():
        for alpha in alphas:
            stage2 = solve_stage2_lp(structure, zstar, alpha=alpha)
            rounded = lpdar(structure, stage2.x)
            z_lp = structure.throughputs(rounded.x_lp)
            yield (
                alpha,
                round((1 - alpha) * zstar, 4),
                round(stage2.objective, 4),
                round(structure.weighted_throughput(rounded.x_lpdar), 4),
                round(jains_fairness_index(z_lp), 4),
            )

    return _timed(
        "ABL-ALPHA",
        f"fairness slack sweep (Z* = {zstar:.3f})",
        ["alpha", "floor", "LP objective", "LPDAR objective", "Jain (LP Z_i)"],
        rows,
    )


def ablation_paths(quick: bool = False, seed: int = 707) -> ExperimentResult:
    """ABL-PATHS — aggregate throughput vs allowed paths per job."""
    num_nodes = 40 if quick else 100
    num_jobs = 40 if quick else 80
    network = random_network(num_nodes=num_nodes, seed=seed).with_wavelengths(4, 20.0)
    from ..workload import WorkloadGenerator

    jobs = WorkloadGenerator(network, _CONTENDED, seed=seed + 1).jobs(num_jobs)
    ks = (1, 2, 4) if quick else (1, 2, 4, 8)

    def rows():
        for k in ks:
            grid = TimeGrid.covering(jobs.max_end())
            structure = build_structure(network, jobs, grid, k_paths=k)
            zstar = solve_stage1(structure).zstar
            aggregate = solve_stage2_lp(structure, zstar, alpha=1.0).objective
            yield (k, round(zstar, 4), round(aggregate, 4))

    return _timed(
        "ABL-PATHS",
        f"allowed paths per job ({num_jobs} jobs, {num_nodes}-node random net)",
        ["k paths", "Z*", "aggregate throughput"],
        rows,
    )


def ablation_continuity(quick: bool = False, seed: int = 1717) -> ExperimentResult:
    """ABL-CONT — strict wavelength continuity vs full conversion."""
    num_jobs = 60 if quick else 120
    network = random_network(num_nodes=40 if quick else 60, seed=seed)
    jobs = calibrated_jobs(
        network, num_jobs, seed=seed + 1, target_zstar=0.9, config=_CONTENDED
    )
    paths = shared_path_sets(network, jobs)
    sweep = (2, 8) if quick else (2, 4, 8, 16)

    def rows():
        for w in sweep:
            net_w = network.with_wavelengths(w, 20.0)
            grid = TimeGrid.covering(jobs.max_end())
            structure = build_structure(net_w, jobs, grid, 4, path_sets=paths)
            zstar = solve_stage1(structure).zstar
            stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
            rounded = lpdar(structure, stage2.x)
            strict = realize_schedule(structure, rounded.x_lpdar, "strict")
            total = len(strict.grants) + len(strict.failures)
            yield (
                w,
                total,
                round(len(strict.grants) / total, 4) if total else float("nan"),
            )

    return _timed(
        "ABL-CONT",
        "strict wavelength continuity: realizable share of LPDAR grants",
        ["wavelengths/link", "grants", "strict first-fit ok"],
        rows,
    )
