"""Programmatic paper-figure experiments.

Each function reproduces one artifact of the paper's evaluation
(Section III) and returns an :class:`ExperimentResult` — a structured
row set plus a rendered table — so figures can be regenerated from a
script, the CLI (``python -m repro experiment fig1``), or the benchmark
harness, all sharing one implementation.

Every experiment takes ``quick=True`` for a scaled-down run (seconds
instead of a minute) that preserves the qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..analysis.reporting import Table
from ..core.lpdar import discretize, greedy_adjust, lpdar
from ..core.ret import solve_ret
from ..core.stage2 import solve_stage2_lp
from ..core.throughput import solve_stage1
from ..errors import ValidationError
from ..engine import build_structure
from ..obs import Telemetry
from ..timegrid import TimeGrid
from ..workload import WorkloadConfig, WorkloadGenerator
from .setup import (
    WAVELENGTH_SWEEP,
    abilene_network,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)

__all__ = [
    "ExperimentResult",
    "fig1_random_throughput",
    "fig2_abilene_throughput",
    "fig3_computation_time",
    "fig4_ret_end_time",
    "jobs_finished",
    "EXPERIMENTS",
    "run_experiment",
]

#: Workload shape shared by the throughput experiments (tight windows
#: create the contention that makes LP solutions fractional).
_CONTENDED = WorkloadConfig(
    window_slices_low=2, window_slices_high=4, start_slack_slices=2
)

_RET_CONFIG = WorkloadConfig(
    size_low=40.0,
    size_high=200.0,
    window_slices_low=2,
    window_slices_high=5,
    start_slack_slices=2,
)


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated paper artifact.

    Attributes
    ----------
    experiment_id:
        Short id matching DESIGN.md's experiment index (e.g. ``FIG1``).
    title:
        Human-readable description (printed above the table).
    columns:
        Column names of ``rows``.
    rows:
        The series the paper's figure plots, one tuple per sweep point.
    seconds:
        Wall-clock time the experiment took.
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    seconds: float

    def table(self) -> Table:
        """Rendered ASCII table of the result."""
        table = Table(list(self.columns), title=f"{self.experiment_id} — {self.title}")
        for row in self.rows:
            table.add_row(list(row))
        return table

    def column(self, name: str) -> list:
        """One column of ``rows`` by name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ValidationError(
                f"no column {name!r}; have {list(self.columns)}"
            ) from None
        return [row[idx] for row in self.rows]


def _timed(experiment_id: str, title: str, columns, build_rows) -> ExperimentResult:
    telemetry = Telemetry()
    with telemetry.span("experiment") as span:
        rows = tuple(tuple(r) for r in build_rows())
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=tuple(columns),
        rows=rows,
        seconds=span.elapsed,
    )


def fig1_random_throughput(
    quick: bool = False, seed: int = 101
) -> ExperimentResult:
    """Fig. 1 — LP/LPD/LPDAR throughput on a 100-node random network."""
    num_jobs = 120 if quick else 350
    num_nodes = 60 if quick else 100
    network = random_network(num_nodes=num_nodes, seed=seed)
    jobs = calibrated_jobs(
        network, num_jobs, seed=seed + 1, target_zstar=0.9, config=_CONTENDED
    )
    paths = shared_path_sets(network, jobs)
    sweep = WAVELENGTH_SWEEP[:3] if quick else WAVELENGTH_SWEEP

    def rows():
        for w in sweep:
            p = throughput_pipeline(network, jobs, w, path_sets=paths)
            yield (w, round(p.zstar, 4), 1.0, round(p.lpd_ratio, 4),
                   round(p.lpdar_ratio, 4))

    return _timed(
        "FIG1",
        f"normalized throughput, random network ({num_nodes} nodes, "
        f"{network.num_link_pairs} link pairs, {num_jobs} jobs)",
        ["wavelengths/link", "Z*", "LP", "LPD/LP", "LPDAR/LP"],
        rows,
    )


def fig2_abilene_throughput(
    quick: bool = False, seed: int = 202
) -> ExperimentResult:
    """Fig. 2 — LP/LPD/LPDAR throughput on the Abilene network."""
    num_jobs = 30 if quick else 60
    network = abilene_network()
    jobs = calibrated_jobs(
        network, num_jobs, seed=seed, target_zstar=0.9, config=_CONTENDED
    )
    paths = shared_path_sets(network, jobs)
    sweep = WAVELENGTH_SWEEP[:3] if quick else WAVELENGTH_SWEEP

    def rows():
        for w in sweep:
            p = throughput_pipeline(network, jobs, w, path_sets=paths)
            yield (w, round(p.zstar, 4), 1.0, round(p.lpd_ratio, 4),
                   round(p.lpdar_ratio, 4))

    return _timed(
        "FIG2",
        f"normalized throughput, Abilene (11 nodes, "
        f"{network.num_link_pairs} link pairs, {num_jobs} jobs)",
        ["wavelengths/link", "Z*", "LP", "LPD/LP", "LPDAR/LP"],
        rows,
    )


def fig3_computation_time(
    quick: bool = False, seed: int = 303
) -> ExperimentResult:
    """Fig. 3 — computation time of LP vs LPD vs LPDAR."""
    network = random_network(
        num_nodes=60 if quick else 100, seed=seed
    ).with_wavelengths(4, 20.0)
    sweep = (50, 100) if quick else (50, 100, 200, 350)

    def rows():
        for num_jobs in sweep:
            jobs = calibrated_jobs(
                network, num_jobs, seed=seed + num_jobs, target_zstar=0.9,
                config=_CONTENDED,
            )
            paths = shared_path_sets(network, jobs)
            grid = TimeGrid.covering(jobs.max_end())
            structure = build_structure(network, jobs, grid, 4, path_sets=paths)
            telemetry = Telemetry()
            with telemetry.span("lp"):
                zstar = solve_stage1(structure, telemetry=telemetry).zstar
                stage2 = solve_stage2_lp(
                    structure, zstar, alpha=0.1, telemetry=telemetry
                )
            t_lp = telemetry.seconds("lp")
            with telemetry.span("lpd"):
                x_lpd = discretize(stage2.x)
            t_lpd = t_lp + telemetry.seconds("lpd")
            greedy_adjust(structure, x_lpd, telemetry=telemetry)
            t_lpdar = t_lpd + telemetry.seconds("greedy_adjust")
            yield (
                num_jobs,
                structure.num_cols,
                round(t_lp, 4),
                round(t_lpd, 4),
                round(t_lpdar, 4),
                round(t_lpdar / t_lp, 4),
            )

    return _timed(
        "FIG3",
        "computation time, random network",
        ["jobs", "variables", "LP (s)", "LPD (s)", "LPDAR (s)", "LPDAR/LP time"],
        rows,
    )


def fig4_ret_end_time(quick: bool = False, seed: int = 404) -> ExperimentResult:
    """Fig. 4 — average end time under RET vs the number of jobs."""
    network = random_network(
        num_nodes=50 if quick else 100, seed=seed
    ).with_wavelengths(2, 20.0)
    sweep = (10, 20) if quick else (10, 20, 30, 40)

    def rows():
        for num_jobs in sweep:
            jobs = WorkloadGenerator(
                network, _RET_CONFIG, seed=seed + num_jobs
            ).jobs(num_jobs)
            result = solve_ret(network, jobs, k_paths=4, b_max=20.0, delta=0.1)
            yield (
                num_jobs,
                round(result.b_final, 4),
                round(result.average_end_time("lp"), 3),
                round(result.average_end_time("lpdar"), 3),
                round(result.fraction_finished("lpdar"), 4),
            )

    return _timed(
        "FIG4",
        "average end time under RET (slices), random network",
        ["jobs", "b_final", "avg end LP", "avg end LPDAR", "LPDAR finished"],
        rows,
    )


def jobs_finished(quick: bool = False, seed: int = 505) -> ExperimentResult:
    """§III-B.1 — fraction of jobs finished at Algorithm 2's extension."""
    network = random_network(
        num_nodes=50 if quick else 100, seed=seed
    ).with_wavelengths(2, 20.0)
    seeds = (1001, 1002) if quick else (1001, 1002, 1003, 1004)

    def rows():
        for k, instance_seed in enumerate(seeds):
            jobs = WorkloadGenerator(
                network, _RET_CONFIG, seed=instance_seed
            ).jobs(25)
            result = solve_ret(network, jobs, k_paths=4, b_max=20.0, delta=0.1)
            yield (
                k,
                round(result.b_final, 4),
                round(result.fraction_finished("lp"), 4),
                round(result.fraction_finished("lpd"), 4),
                round(result.fraction_finished("lpdar"), 4),
            )

    return _timed(
        "TXT-FIN",
        "fraction of jobs finished at Algorithm 2's extension",
        ["instance", "b_final", "LP finished", "LPD finished", "LPDAR finished"],
        rows,
    )


#: Registry of runnable experiments by id (used by the CLI).  Ablations
#: from :mod:`repro.experiments.ablations` register themselves here on
#: import (see repro/experiments/__init__.py).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_random_throughput,
    "fig2": fig2_abilene_throughput,
    "fig3": fig3_computation_time,
    "fig4": fig4_ret_end_time,
    "jobs-finished": jobs_finished,
}


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one registered experiment by name."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValidationError(
            f"unknown experiment {name!r}; pick from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick=quick)


def fleet_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Fleet-task entry point: run one experiment cell in a worker.

    Registered as the built-in ``experiment`` task in
    :mod:`repro.parallel.fleet`; the indirection keeps the fleet module
    free of an import-time dependency on the experiment registry.
    """
    return run_experiment(name, quick=quick)
