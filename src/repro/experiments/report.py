"""Generate a markdown reproduction report from live experiment runs.

``write_report`` runs every registered experiment and renders one
markdown document with a table per artifact — a machine-generated
sibling of the hand-annotated ``EXPERIMENTS.md``, useful for checking a
new machine, SciPy version, or code change against the recorded shapes:

    python -m repro experiment all --quick --markdown report.md
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

from ..errors import ValidationError
from .figures import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = ["render_report", "write_report"]


def render_report(
    results: Sequence[ExperimentResult], quick: bool = False
) -> str:
    """Markdown document for a set of experiment results."""
    if not results:
        raise ValidationError("no experiment results to render")
    total = sum(r.seconds for r in results)
    lines = [
        "# Reproduction report",
        "",
        f"{len(results)} experiment(s)"
        + (" (quick mode — scaled-down instances)" if quick else "")
        + f", {total:.1f}s total.",
        "",
        "Compare shapes against the recorded results in `EXPERIMENTS.md`;",
        "absolute values vary with machine and library versions.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        table = result.table()
        table.title = ""  # the heading carries it
        lines.append(table.to_markdown())
        lines.append("")
        lines.append(f"_({result.seconds:.1f}s)_")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | Path,
    names: Sequence[str] | None = None,
    quick: bool = False,
) -> list[ExperimentResult]:
    """Run experiments (all registered by default) and write the report.

    Returns the results so callers can inspect them programmatically.
    """
    selected = sorted(EXPERIMENTS) if names is None else list(names)
    results = [run_experiment(name, quick=quick) for name in selected]
    Path(path).write_text(render_report(results, quick=quick) + "\n")
    return results
