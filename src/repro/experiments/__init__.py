"""Paper-reproduction experiments, runnable without the benchmark harness."""

from .ablations import ablation_alpha, ablation_continuity, ablation_paths
from .report import render_report, write_report
from .figures import (
    EXPERIMENTS,
    ExperimentResult,
    fig1_random_throughput,
    fig2_abilene_throughput,
    fig3_computation_time,
    fig4_ret_end_time,
    fleet_experiment,
    jobs_finished,
    run_experiment,
)
from .setup import (
    ALPHA,
    TOTAL_LINK_RATE,
    WAVELENGTH_SWEEP,
    ThroughputPoint,
    abilene_network,
    calibrated_jobs,
    random_network,
    shared_path_sets,
    throughput_pipeline,
)

EXPERIMENTS.setdefault("ablation-alpha", ablation_alpha)
EXPERIMENTS.setdefault("ablation-paths", ablation_paths)
EXPERIMENTS.setdefault("ablation-continuity", ablation_continuity)

__all__ = [
    "ExperimentResult",
    "ablation_alpha",
    "ablation_paths",
    "ablation_continuity",
    "render_report",
    "write_report",
    "EXPERIMENTS",
    "run_experiment",
    "fleet_experiment",
    "fig1_random_throughput",
    "fig2_abilene_throughput",
    "fig3_computation_time",
    "fig4_ret_end_time",
    "jobs_finished",
    "ThroughputPoint",
    "throughput_pipeline",
    "calibrated_jobs",
    "random_network",
    "abilene_network",
    "shared_path_sets",
    "WAVELENGTH_SWEEP",
    "TOTAL_LINK_RATE",
    "ALPHA",
]
