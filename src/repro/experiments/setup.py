"""Shared instance builders for the paper-reproduction experiments.

Every benchmark reproduces a figure/table of the paper's Section III.
The experimental recipe is centralized here:

* random networks: Waxman, 100 nodes, average degree 4 (~200 link
  pairs), 20 Gbps links (paper Section III);
* Abilene: 11 nodes, 20 link pairs, 20 Gbps links;
* job sizes uniform [1, 100] GB between random distinct node pairs;
* workloads rescaled (via stage-1 scale invariance) to a controlled
  load level ``Z*`` so overload severity is comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.lpdar import lpdar
from ..core.stage2 import solve_stage2_lp
from ..core.throughput import solve_stage1
from ..engine import build_structure
from ..network import abilene, waxman_network
from ..network.graph import Network
from ..network.paths import build_path_sets
from ..timegrid import TimeGrid
from ..workload import WorkloadConfig, WorkloadGenerator
from ..workload.jobs import JobSet

#: Total per-link rate held constant across wavelength sweeps (Figs. 1-2).
TOTAL_LINK_RATE = 20.0

#: The paper's wavelength-count sweep for Figs. 1 and 2.
WAVELENGTH_SWEEP = (2, 4, 8, 16, 32)

#: Fairness parameter used throughout the paper's evaluation.
ALPHA = 0.1


def random_network(num_nodes: int = 100, seed: int = 0) -> Network:
    """The paper's random test network: Waxman, average degree 4."""
    return waxman_network(
        num_nodes,
        avg_degree=4,
        capacity=1,
        wavelength_rate=TOTAL_LINK_RATE,
        seed=seed,
    )


def abilene_network() -> Network:
    """The paper's Abilene instance: 11 nodes, 20 link pairs."""
    return abilene(capacity=1, wavelength_rate=TOTAL_LINK_RATE, extended=True)


def calibrated_jobs(
    network: Network,
    num_jobs: int,
    seed: int,
    target_zstar: float = 0.9,
    k_paths: int = 4,
    config: WorkloadConfig | None = None,
) -> JobSet:
    """Random paper-style jobs rescaled so stage-1 ``Z*`` equals the target.

    ``Z*`` scales inversely with a uniform demand scaling, so a single
    stage-1 solve calibrates the load exactly.  Because holding the total
    link rate constant makes ``Z*`` invariant to the wavelength split,
    one calibration serves an entire Figs. 1/2 sweep.
    """
    generator = WorkloadGenerator(network, config, seed=seed)
    jobs = generator.jobs(num_jobs)
    grid = TimeGrid.covering(jobs.max_end())
    structure = build_structure(network, jobs, grid, k_paths)
    zstar = solve_stage1(structure).zstar
    if zstar <= 0:
        raise RuntimeError("calibration workload has Z* = 0")
    return jobs.scaled(zstar / target_zstar)


@dataclass(frozen=True)
class ThroughputPoint:
    """One sweep point of the Figs. 1/2 experiment."""

    wavelengths: int
    zstar: float
    lp: float
    lpd: float
    lpdar: float

    @property
    def lpd_ratio(self) -> float:
        return self.lpd / self.lp

    @property
    def lpdar_ratio(self) -> float:
        return self.lpdar / self.lp


def throughput_pipeline(
    base_network: Network,
    jobs: JobSet,
    wavelengths: int,
    k_paths: int = 4,
    alpha: float = ALPHA,
    path_sets=None,
) -> ThroughputPoint:
    """Stage 1 -> stage 2 LP -> LPDAR at one wavelength count.

    The link rate stays at ``TOTAL_LINK_RATE`` while the wavelength count
    varies, exactly as in Figs. 1 and 2 ("different numbers of
    wavelengths on each link while holding the capacity of each link
    constant").
    """
    network = base_network.with_wavelengths(wavelengths, TOTAL_LINK_RATE)
    grid = TimeGrid.covering(jobs.max_end())
    structure = build_structure(
        network, jobs, grid, k_paths, path_sets=path_sets
    )
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=alpha)
    rounded = lpdar(structure, stage2.x)
    wt = structure.weighted_throughput
    return ThroughputPoint(
        wavelengths=wavelengths,
        zstar=zstar,
        lp=wt(rounded.x_lp),
        lpd=wt(rounded.x_lpd),
        lpdar=wt(rounded.x_lpdar),
    )


def shared_path_sets(network: Network, jobs: JobSet, k_paths: int = 4):
    """Path sets reused across a sweep (paths ignore capacities/rates)."""
    return build_path_sets(network, jobs.od_pairs(), k_paths)
