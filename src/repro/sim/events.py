"""Event records emitted by the periodic-scheduling simulator.

The simulator keeps an append-only log of typed events; analysis code
filters it by type.  Events are plain frozen dataclasses ordered by
``time`` (ties keep insertion order).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

__all__ = [
    "Event",
    "JobArrived",
    "JobAdmitted",
    "JobRejected",
    "JobSizeReduced",
    "JobDeadlineExtended",
    "SchedulingPass",
    "JobProgress",
    "JobCompleted",
    "JobExpired",
    "LinkFailed",
    "LinkDegraded",
    "LinkRestored",
    "DeliveryLost",
    "JobRescheduled",
    "DegradedSolve",
    "EVENT_TYPES",
    "event_from_dict",
]


@dataclass(frozen=True)
class Event:
    """Base event: something happened at simulation ``time``."""

    time: float


@dataclass(frozen=True)
class JobArrived(Event):
    """A request reached the controller."""

    job_id: int | str


@dataclass(frozen=True)
class JobAdmitted(Event):
    """Admission control accepted the request."""

    job_id: int | str


@dataclass(frozen=True)
class JobRejected(Event):
    """Admission control turned the request away."""

    job_id: int | str
    reason: str


@dataclass(frozen=True)
class JobSizeReduced(Event):
    """Overload re-negotiation shrank a job's guaranteed size (Remark 2)."""

    job_id: int | str
    original_size: float
    guaranteed_size: float


@dataclass(frozen=True)
class JobDeadlineExtended(Event):
    """RET stretched a job's end time by ``(1 + b)``."""

    job_id: int | str
    original_end: float
    new_end: float


@dataclass(frozen=True)
class SchedulingPass(Event):
    """One periodic AC/scheduling run at an epoch boundary ``k * tau``.

    ``mean_utilization`` is the average wavelength occupancy of the
    freshly computed schedule over its whole horizon (not just the
    executed epoch) — the controller's own load gauge.
    """

    epoch: int
    num_jobs: int
    zstar: float
    overloaded: bool
    solve_seconds: float
    mean_utilization: float = 0.0


@dataclass(frozen=True)
class JobProgress(Event):
    """Volume delivered for a job during the epoch ending at ``time``."""

    job_id: int | str
    delivered: float
    remaining: float


@dataclass(frozen=True)
class JobCompleted(Event):
    """A job's full demand has been delivered."""

    job_id: int | str
    met_deadline: bool


@dataclass(frozen=True)
class JobExpired(Event):
    """A job's window closed before its demand was delivered."""

    job_id: int | str
    remaining: float


@dataclass(frozen=True)
class LinkFailed(Event):
    """The controller detected a link failure at an epoch boundary.

    ``time`` is when the controller *noticed* (the epoch boundary, so
    the log stays time ordered); ``failed_at`` is when the fault
    actually struck, somewhere inside the preceding epoch.
    """

    source: object
    target: object
    failed_at: float


@dataclass(frozen=True)
class LinkDegraded(Event):
    """The controller detected a partial wavelength loss on a link."""

    source: object
    target: object
    remaining: int
    degraded_at: float


@dataclass(frozen=True)
class LinkRestored(Event):
    """The controller detected a link repair at an epoch boundary."""

    source: object
    target: object
    restored_at: float


@dataclass(frozen=True)
class DeliveryLost(Event):
    """In-flight volume voided because a link failed mid-epoch.

    The schedule being executed assumed capacity a fault removed; the
    volume that would have crossed the affected links never arrived and
    stays in the job's ``remaining``.
    """

    job_id: int | str
    volume: float
    reason: str


@dataclass(frozen=True)
class JobRescheduled(Event):
    """A surviving job was replanned around failed links.

    Emitted when a job whose previous schedule used a now-failed or
    degraded link is handed back to the scheduler with routes rebuilt
    to exclude the dead edges.
    """

    job_id: int | str
    reason: str


@dataclass(frozen=True)
class DegradedSolve(Event):
    """An epoch's solve ran out of budget and fell down the ladder.

    The scheduler still committed a feasible integer assignment —
    ``level`` names the degradation rung that produced it
    (``"lpd_greedy"`` or ``"greedy_baseline"``, see
    :class:`~repro.core.scheduler.ScheduleResult`).
    """

    epoch: int
    level: str
    reason: str


#: Event-class registry by name: the inverse of the ``type`` field that
#: :func:`repro.serialization.simulation_to_dict` writes.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.__name__: cls
    for cls in (
        JobArrived,
        JobAdmitted,
        JobRejected,
        JobSizeReduced,
        JobDeadlineExtended,
        SchedulingPass,
        JobProgress,
        JobCompleted,
        JobExpired,
        LinkFailed,
        LinkDegraded,
        LinkRestored,
        DeliveryLost,
        JobRescheduled,
        DegradedSolve,
    )
}


def event_from_dict(data: dict) -> Event:
    """Rebuild an event from its serialized ``{"type": ..., ...}`` form.

    Inverse of the event encoding in
    :func:`repro.serialization.simulation_to_dict`, used when replaying
    an epoch journal.  Unknown types and mismatched fields raise
    :class:`~repro.errors.ValidationError`.
    """
    if not isinstance(data, dict) or "type" not in data:
        raise ValidationError(
            'serialized event must be a dict with a "type" field'
        )
    fields = dict(data)
    name = fields.pop("type")
    cls = EVENT_TYPES.get(name)
    if cls is None:
        raise ValidationError(f"unknown event type {name!r}")
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValidationError(
            f"malformed {name} event: {exc}"
        ) from None
