"""Aggregate statistics over a finished simulation run.

These summarize a :class:`~repro.sim.simulator.SimulationResult` into the
operator-facing numbers: acceptance/completion/deadline rates, response
times, per-epoch load, and how much re-negotiation (size reduction or
deadline extension) overload forced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import JobDeadlineExtended, SchedulingPass
from .simulator import SimulationResult

__all__ = ["SimulationSummary", "summarize"]


@dataclass(frozen=True)
class SimulationSummary:
    """One-line-per-metric digest of a simulation run.

    Attributes
    ----------
    num_jobs, num_completed, num_rejected, num_expired:
        Lifecycle counts.
    acceptance_rate, completion_rate, deadline_rate:
        As on :class:`SimulationResult`.
    delivered_volume, offered_volume:
        Total volume moved vs. requested.
    mean_response_time:
        Mean (completion - arrival) over completed jobs; ``nan`` if none.
    mean_lateness:
        Mean ``max(0, completion - requested_end)`` over completed jobs.
    num_deadline_extensions:
        RET events emitted (``extend`` policy).
    num_scheduling_passes, mean_solve_seconds:
        Controller workload.
    mean_zstar:
        Average stage-1 throughput across passes (load indicator).
    mean_utilization:
        Average schedule-wide wavelength occupancy across passes.
    """

    num_jobs: int
    num_completed: int
    num_rejected: int
    num_expired: int
    acceptance_rate: float
    completion_rate: float
    deadline_rate: float
    delivered_volume: float
    offered_volume: float
    mean_response_time: float
    mean_lateness: float
    num_deadline_extensions: int
    num_scheduling_passes: int
    mean_solve_seconds: float
    mean_zstar: float
    mean_utilization: float


def summarize(result: SimulationResult) -> SimulationSummary:
    """Compute a :class:`SimulationSummary` from a finished run."""
    completed = result.by_status("completed")
    response = [r.completion_time - r.job.arrival for r in completed]
    lateness = [max(0.0, r.completion_time - r.job.end) for r in completed]
    passes = [e for e in result.events if isinstance(e, SchedulingPass)]
    extensions = [e for e in result.events if isinstance(e, JobDeadlineExtended)]
    return SimulationSummary(
        num_jobs=len(result.records),
        num_completed=len(completed),
        num_rejected=result.num_rejected,
        num_expired=len(result.by_status("expired")),
        acceptance_rate=result.acceptance_rate,
        completion_rate=result.completion_rate,
        deadline_rate=result.deadline_rate,
        delivered_volume=result.delivered_volume,
        offered_volume=float(sum(r.job.size for r in result.records)),
        mean_response_time=float(np.mean(response)) if response else float("nan"),
        mean_lateness=float(np.mean(lateness)) if lateness else float("nan"),
        num_deadline_extensions=len(extensions),
        num_scheduling_passes=len(passes),
        mean_solve_seconds=(
            float(np.mean([p.solve_seconds for p in passes]))
            if passes
            else float("nan")
        ),
        mean_zstar=(
            float(np.mean([p.zstar for p in passes])) if passes else float("nan")
        ),
        mean_utilization=(
            float(np.mean([p.mean_utilization for p in passes]))
            if passes
            else float("nan")
        ),
    )
