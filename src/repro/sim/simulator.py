"""Periodic AC/scheduling simulator (the paper's system framework).

Section II-A: a network controller wakes up every ``tau`` time units,
collects the requests that arrived since the previous epoch, makes an
admission decision, and (re)schedules *all* unfinished jobs over the
future time slices.  Between epochs the network executes the current
schedule; jobs accumulate delivered volume slice by slice.

This module simulates that loop end to end.  Three admission policies
mirror the paper's three overload actions:

* ``"reject"`` — footnote 1: keep previously admitted jobs, admit the
  longest feasible prefix of the new ones, reject the rest.
* ``"reduce"`` — Section II-B: admit everything; in overload, jobs
  simply receive their stage-2 share ``Z_i`` of service (equivalently,
  sizes are renegotiated down).
* ``"extend"`` — Section II-C: admit everything; in overload, stretch
  every end time by the smallest completing ``(1 + b)`` via Algorithm 2.

Rescheduling every epoch is what lets the controller exploit
time-varying, multipath assignments — the framework whose benefit the
paper's earlier companion papers quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np

from ..errors import ScheduleError, ValidationError
from ..network.graph import Network
from ..obs import NULL_TELEMETRY, Telemetry
from ..network.paths import build_path_sets
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from ..core.admission import admit_greedy, admit_max_prefix, by_arrival
from ..core.metrics import mean_link_utilization, per_slice_delivery
from ..core.ret import solve_ret
from ..core.scheduler import Scheduler
from .events import (
    Event,
    JobAdmitted,
    JobArrived,
    JobCompleted,
    JobDeadlineExtended,
    JobExpired,
    JobProgress,
    JobRejected,
    SchedulingPass,
)

__all__ = ["AdmissionPolicy", "JobRecord", "SimulationResult", "Simulation"]

AdmissionPolicy = Literal["reject", "reduce", "extend"]

_VOLUME_TOL = 1e-6


@dataclass
class JobRecord:
    """Lifecycle bookkeeping for one request.

    Attributes
    ----------
    job:
        The original request (sizes/windows as submitted).
    effective_end:
        Current deadline (grows only under the ``extend`` policy).
    remaining:
        Undelivered volume, in the job's own units.
    status:
        ``pending`` -> ``active`` -> ``completed`` | ``expired``, or
        ``rejected``.
    completion_time:
        When the last byte landed (slice end), if completed.
    """

    job: Job
    effective_end: float
    remaining: float
    status: str = "pending"
    completion_time: float | None = None

    @property
    def met_deadline(self) -> bool:
        """Completed within the *originally requested* end time."""
        return (
            self.status == "completed"
            and self.completion_time is not None
            and self.completion_time <= self.job.end + 1e-9
        )


@dataclass(frozen=True)
class SimulationResult:
    """Final state of a simulation run.

    Attributes
    ----------
    records:
        One :class:`JobRecord` per submitted request, submission order.
    events:
        The full event log, time ordered.
    horizon:
        The simulated time span.
    """

    records: tuple[JobRecord, ...]
    events: tuple[Event, ...]
    horizon: float
    #: Per-epoch (epoch_index, ScheduleResult) pairs; empty unless the
    #: simulation was built with ``keep_schedules=True``.
    schedules: tuple = ()

    def by_status(self, status: str) -> list[JobRecord]:
        """Records with the given lifecycle status."""
        return [r for r in self.records if r.status == status]

    @property
    def num_completed(self) -> int:
        return len(self.by_status("completed"))

    @property
    def num_rejected(self) -> int:
        return len(self.by_status("rejected"))

    @property
    def acceptance_rate(self) -> float:
        """Admitted share of all submitted requests."""
        considered = [r for r in self.records if r.status != "pending"]
        if not considered:
            return float("nan")
        return 1.0 - len(self.by_status("rejected")) / len(considered)

    @property
    def completion_rate(self) -> float:
        """Completed share of admitted (non-rejected) requests."""
        admitted = [r for r in self.records if r.status not in ("rejected", "pending")]
        if not admitted:
            return float("nan")
        return self.num_completed / len(admitted)

    @property
    def deadline_rate(self) -> float:
        """Share of admitted requests finished by their *original* deadline."""
        admitted = [r for r in self.records if r.status not in ("rejected", "pending")]
        if not admitted:
            return float("nan")
        return sum(r.met_deadline for r in admitted) / len(admitted)

    @property
    def delivered_volume(self) -> float:
        """Total volume delivered across all jobs."""
        return sum(r.job.size - r.remaining for r in self.records)


class Simulation:
    """Discrete-time simulation of the periodic controller loop.

    Parameters
    ----------
    network:
        The wavelength-switched network under control.
    tau:
        Scheduling period; must be a positive multiple of
        ``slice_length`` so epochs align with slice boundaries.
    slice_length:
        Slice granularity of the schedules.
    policy:
        Overload action: ``"reject"``, ``"reduce"`` or ``"extend"``.
    k_paths, alpha:
        Forwarded to the :class:`~repro.core.scheduler.Scheduler`.
    ret_b_max, ret_delta:
        Algorithm-2 parameters for the ``extend`` policy.
    rejection:
        Which admission algorithm the ``reject`` policy runs:
        ``"prefix"`` (footnote 1's binary search) or ``"greedy"`` (the
        non-prefix variant, which skips misfits instead of cutting the
        whole tail).
    keep_schedules:
        Retain every epoch's full :class:`~repro.core.scheduler.ScheduleResult`
        on the result (``schedules`` attribute) for post-hoc analysis,
        e.g. reconfiguration churn.  Off by default (memory).
    capacity_profile:
        Optional :class:`~repro.network.capacity.CapacityProfile` in
        *absolute* time: maintenance windows and background load the
        online controller must schedule around.  Re-based onto each
        epoch's grid automatically; slices past the profile's horizon
        fall back to installed capacity.  Applies to the scheduling
        passes; the ``extend`` policy's RET extension search does not
        see it (the resulting schedule still honours it).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` collecting the whole
        run: each epoch's admission + scheduling work is timed under a
        ``"scheduling_pass"`` span, and the scheduler's and RET's own
        records accumulate beneath it.  ``None`` measures nothing.
    """

    def __init__(
        self,
        network: Network,
        tau: float = 1.0,
        slice_length: float = 1.0,
        policy: AdmissionPolicy = "reduce",
        k_paths: int = 4,
        alpha: float = 0.1,
        ret_b_max: float = 10.0,
        ret_delta: float = 0.1,
        rejection: str = "prefix",
        keep_schedules: bool = False,
        capacity_profile=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if tau <= 0 or slice_length <= 0:
            raise ValidationError("tau and slice_length must be positive")
        ratio = tau / slice_length
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise ValidationError(
                f"tau ({tau}) must be a positive multiple of slice_length "
                f"({slice_length}) so epochs align with slice boundaries"
            )
        if policy not in ("reject", "reduce", "extend"):
            raise ValidationError(f"unknown policy {policy!r}")
        if rejection not in ("prefix", "greedy"):
            raise ValidationError(f"unknown rejection variant {rejection!r}")
        self.rejection = rejection
        self.network = network
        self.tau = float(tau)
        self.slice_length = float(slice_length)
        self.slices_per_epoch = int(round(ratio))
        self.policy: AdmissionPolicy = policy
        self.k_paths = k_paths
        self.alpha = alpha
        self.ret_b_max = ret_b_max
        self.ret_delta = ret_delta
        self.keep_schedules = keep_schedules
        if capacity_profile is not None and capacity_profile.network is not network:
            raise ValidationError(
                "capacity profile was built for a different network"
            )
        self.capacity_profile = capacity_profile
        self.telemetry = telemetry or NULL_TELEMETRY

    # ------------------------------------------------------------------
    def run(self, jobs: JobSet, horizon: float | None = None) -> SimulationResult:
        """Simulate until every job is resolved or ``horizon`` is reached."""
        if len(jobs) == 0:
            raise ValidationError("cannot simulate an empty job set")
        if horizon is None:
            # Generous default: latest deadline plus full RET headroom.
            horizon = (1.0 + self.ret_b_max) * jobs.max_end()
        records = {j.id: JobRecord(j, j.end, j.size) for j in jobs}
        order = [j.id for j in jobs]
        events: list[Event] = []
        kept_schedules: list = []
        scheduler = Scheduler(
            self.network,
            k_paths=self.k_paths,
            alpha=self.alpha,
            slice_length=self.slice_length,
            telemetry=self.telemetry,
        )
        path_sets = build_path_sets(
            self.network, jobs.od_pairs(), self.k_paths
        )

        epoch = 0
        now = 0.0
        unseen = sorted(jobs, key=lambda j: (j.arrival, str(j.id)))
        while now < horizon - 1e-9:
            # 1. Collect arrivals up to this epoch.
            while unseen and unseen[0].arrival <= now + 1e-9:
                job = unseen.pop(0)
                events.append(JobArrived(now, job.id))
                records[job.id].status = "active"

            # 2. Expire active jobs whose window can no longer fit a slice.
            self._expire_stale(records, now, events)

            # 3. Residual instance over future time.
            residual = self._residual_jobs(records, now)
            if residual is None:
                if not unseen:
                    break  # nothing active, nothing to come
                now = self._advance_to(unseen[0].arrival)
                epoch = int(round(now / self.tau))
                continue

            # 4. Admission control + scheduling, timed as one pass (the
            #    span replaces the old hand-rolled perf_counter block and
            #    also feeds the SchedulingPass event's solve time).
            with self.telemetry.span("scheduling_pass") as pass_span:
                residual = self._apply_policy(residual, records, now, events)
                if residual is not None:
                    grid = TimeGrid.covering(
                        max(residual.max_end(), now + self.tau),
                        self.slice_length,
                        start=now,
                    )
                    profile = (
                        self.capacity_profile.for_grid(grid)
                        if self.capacity_profile is not None
                        else None
                    )
                    result = scheduler.schedule(
                        residual, grid, capacity_profile=profile
                    )
            if residual is None:
                now += self.tau
                epoch += 1
                continue
            events.append(
                SchedulingPass(
                    now,
                    epoch,
                    len(residual),
                    result.zstar,
                    result.overloaded,
                    pass_span.elapsed,
                    mean_link_utilization(result.structure, result.x),
                )
            )

            if self.keep_schedules:
                kept_schedules.append((epoch, result))

            # 5. Execute the first tau worth of slices.
            self._execute(result, records, now, events)
            now += self.tau
            epoch += 1

        self._expire_stale(records, horizon, events, final=True)
        return SimulationResult(
            records=tuple(records[i] for i in order),
            events=tuple(events),
            horizon=float(horizon),
            schedules=tuple(kept_schedules),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _advance_to(self, t: float) -> float:
        """Next epoch boundary at or after ``t``."""
        return np.ceil(t / self.tau - 1e-9) * self.tau

    def _residual_jobs(self, records: dict, now: float) -> JobSet | None:
        """Unfinished admitted jobs, re-windowed to start at ``now``."""
        out = []
        for rec in records.values():
            if rec.status != "active":
                continue
            start = max(rec.job.start, now)
            if rec.effective_end - start < self.slice_length - 1e-9:
                continue  # expiry pass will catch it
            out.append(
                replace(
                    rec.job,
                    size=rec.remaining,
                    start=start,
                    end=rec.effective_end,
                    arrival=min(rec.job.arrival, start),
                )
            )
        return JobSet(out) if out else None

    def _expire_stale(
        self, records: dict, now: float, events: list, final: bool = False
    ) -> None:
        for rec in records.values():
            if rec.status != "active":
                continue
            window_left = rec.effective_end - max(rec.job.start, now)
            if final or window_left < self.slice_length - 1e-9:
                rec.status = "expired"
                events.append(JobExpired(now, rec.job.id, rec.remaining))

    def _apply_policy(
        self, residual: JobSet, records: dict, now: float, events: list
    ) -> JobSet | None:
        """Admission action; may reject jobs or extend deadlines in place."""
        if self.policy == "reduce":
            return residual

        if self.policy == "reject":
            grid = TimeGrid.covering(
                max(residual.max_end(), now + self.tau), self.slice_length, start=now
            )
            admit = admit_greedy if self.rejection == "greedy" else admit_max_prefix
            decision = admit(
                self.network,
                residual,
                grid,
                self.k_paths,
                threshold=1.0,
                key=by_arrival,
            )
            for job in decision.rejected:
                rec = records[job.id]
                # Never evict a job that already received service; it
                # simply stays admitted (best-effort) this epoch.
                if rec.remaining < rec.job.size - _VOLUME_TOL:
                    continue
                rec.status = "rejected"
                events.append(
                    JobRejected(now, job.id, "insufficient capacity (Z* < 1)")
                )
            admitted = [j for j in residual if records[j.id].status == "active"]
            return JobSet(admitted) if admitted else None

        # policy == "extend": stretch deadlines only when overloaded.
        try:
            ret = solve_ret(
                self.network,
                residual,
                slice_length=self.slice_length,
                k_paths=self.k_paths,
                b_max=self.ret_b_max,
                delta=self.ret_delta,
                telemetry=self.telemetry,
            )
        except ScheduleError:
            return residual  # run best-effort; expiry will record the loss
        if ret.b_final > 0:
            out = []
            for job in residual:
                rec = records[job.id]
                new_end = (1.0 + ret.b_final) * job.end
                if new_end > rec.effective_end + 1e-9:
                    events.append(
                        JobDeadlineExtended(now, job.id, rec.effective_end, new_end)
                    )
                    rec.effective_end = new_end
                out.append(replace(job, end=new_end))
            return JobSet(out)
        return residual

    def _execute(self, result, records: dict, now: float, events: list) -> None:
        """Deliver the first epoch's slices of the freshly computed schedule."""
        structure = result.structure
        delivery = per_slice_delivery(structure, result.x)
        grid = structure.grid
        executed = [
            j
            for j in range(grid.num_slices)
            if grid.slice_start(j) < now + self.tau - 1e-9
        ]
        if not executed:
            return
        rate = self.network.wavelength_rate
        for i, job in enumerate(structure.jobs):
            rec = records[job.id]
            volume = float(delivery[i, executed].sum()) * rate
            if volume <= _VOLUME_TOL:
                continue
            volume = min(volume, rec.remaining)
            rec.remaining -= volume
            events.append(JobProgress(now + self.tau, job.id, volume, rec.remaining))
            if rec.remaining <= _VOLUME_TOL * max(rec.job.size, 1.0):
                rec.remaining = 0.0
                rec.status = "completed"
                # Completion lands at the end of the last executed slice
                # that actually carried volume for this job.
                carrying = [j for j in executed if delivery[i, j] > 0]
                rec.completion_time = grid.slice_end(carrying[-1])
                events.append(
                    JobCompleted(rec.completion_time, job.id, rec.met_deadline)
                )
