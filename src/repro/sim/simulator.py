"""Periodic AC/scheduling simulator (the paper's system framework).

Section II-A: a network controller wakes up every ``tau`` time units,
collects the requests that arrived since the previous epoch, makes an
admission decision, and (re)schedules *all* unfinished jobs over the
future time slices.  Between epochs the network executes the current
schedule; jobs accumulate delivered volume slice by slice.

This module simulates that loop end to end.  Three admission policies
mirror the paper's three overload actions:

* ``"reject"`` — footnote 1: keep previously admitted jobs, admit the
  longest feasible prefix of the new ones, reject the rest.
* ``"reduce"`` — Section II-B: admit everything; in overload, jobs
  simply receive their stage-2 share ``Z_i`` of service (equivalently,
  sizes are renegotiated down).
* ``"extend"`` — Section II-C: admit everything; in overload, stretch
  every end time by the smallest completing ``(1 + b)`` via Algorithm 2.

Rescheduling every epoch is what lets the controller exploit
time-varying, multipath assignments — the framework whose benefit the
paper's earlier companion papers quantified.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Literal

import numpy as np

from ..control.kernel import (
    EpochKernel,
    EpochOutcome,
    base_action_for,
    simulation_journal_entry,
    simulation_journal_header,
    used_edges as shared_used_edges,
    window_closed,
)
from ..engine.engine import ModelEngine
from ..errors import BudgetExceededError, ScheduleError, ValidationError
from ..faults.events import LinkDown, WavelengthDegrade
from ..faults.schedule import FaultSchedule
from ..lp.solver import DEFAULT_RESILIENCE, SolveBudget, SolveResilience
from ..network.capacity import CapacityProfile
from ..network.graph import Network
from ..obs import NULL_TELEMETRY, Telemetry
from ..recovery.crash import CrashInjector
from ..recovery.journal import EpochJournal, read_journal
from ..timegrid import TimeGrid
from ..workload.jobs import Job, JobSet
from ..core.admission import admit_greedy, admit_max_prefix, by_arrival
from ..core.metrics import mean_link_utilization, per_slice_delivery
from ..core.ret import solve_ret
from ..core.scheduler import Scheduler
from .events import (
    DegradedSolve,
    DeliveryLost,
    Event,
    JobAdmitted,
    JobArrived,
    JobCompleted,
    JobDeadlineExtended,
    JobExpired,
    JobProgress,
    JobRejected,
    JobRescheduled,
    LinkDegraded,
    LinkFailed,
    LinkRestored,
    SchedulingPass,
    event_from_dict,
)

__all__ = ["AdmissionPolicy", "JobRecord", "SimulationResult", "Simulation"]

AdmissionPolicy = Literal["reject", "reduce", "extend"]

_VOLUME_TOL = 1e-6


@dataclass
class JobRecord:
    """Lifecycle bookkeeping for one request.

    Attributes
    ----------
    job:
        The original request (sizes/windows as submitted).
    effective_end:
        Current deadline (grows only under the ``extend`` policy).
    remaining:
        Undelivered volume, in the job's own units.
    status:
        ``pending`` -> ``active`` -> ``completed`` | ``expired``, or
        ``rejected``.
    completion_time:
        When the last byte landed (slice end), if completed.
    """

    job: Job
    effective_end: float
    remaining: float
    status: str = "pending"
    completion_time: float | None = None

    @property
    def met_deadline(self) -> bool:
        """Completed within the *originally requested* end time."""
        return (
            self.status == "completed"
            and self.completion_time is not None
            and self.completion_time <= self.job.end + 1e-9
        )


@dataclass(frozen=True)
class SimulationResult:
    """Final state of a simulation run.

    Attributes
    ----------
    records:
        One :class:`JobRecord` per submitted request, submission order.
    events:
        The full event log, time ordered.
    horizon:
        The simulated time span.
    """

    records: tuple[JobRecord, ...]
    events: tuple[Event, ...]
    horizon: float
    #: Per-epoch (epoch_index, ScheduleResult) pairs; empty unless the
    #: simulation was built with ``keep_schedules=True``.
    schedules: tuple = ()
    #: Per-epoch invariant reports (planned, plus realized when a fault
    #: voided volume); empty unless built with ``verify_epochs=True``.
    verification: tuple = ()

    def by_status(self, status: str) -> list[JobRecord]:
        """Records with the given lifecycle status."""
        return [r for r in self.records if r.status == status]

    @property
    def num_completed(self) -> int:
        return len(self.by_status("completed"))

    @property
    def num_rejected(self) -> int:
        return len(self.by_status("rejected"))

    @property
    def acceptance_rate(self) -> float:
        """Admitted share of all submitted requests."""
        considered = [r for r in self.records if r.status != "pending"]
        if not considered:
            return float("nan")
        return 1.0 - len(self.by_status("rejected")) / len(considered)

    @property
    def completion_rate(self) -> float:
        """Completed share of admitted (non-rejected) requests."""
        admitted = [r for r in self.records if r.status not in ("rejected", "pending")]
        if not admitted:
            return float("nan")
        return self.num_completed / len(admitted)

    @property
    def deadline_rate(self) -> float:
        """Share of admitted requests finished by their *original* deadline."""
        admitted = [r for r in self.records if r.status not in ("rejected", "pending")]
        if not admitted:
            return float("nan")
        return sum(r.met_deadline for r in admitted) / len(admitted)

    @property
    def delivered_volume(self) -> float:
        """Total volume delivered across all jobs."""
        return sum(r.job.size - r.remaining for r in self.records)


class Simulation:
    """Discrete-time simulation of the periodic controller loop.

    Parameters
    ----------
    network:
        The wavelength-switched network under control.
    tau:
        Scheduling period; must be a positive multiple of
        ``slice_length`` so epochs align with slice boundaries.
    slice_length:
        Slice granularity of the schedules.
    policy:
        Overload action: ``"reject"``, ``"reduce"`` or ``"extend"``.
    k_paths, alpha:
        Forwarded to the :class:`~repro.core.scheduler.Scheduler`.
    ret_b_max, ret_delta:
        Algorithm-2 parameters for the ``extend`` policy.
    rejection:
        Which admission algorithm the ``reject`` policy runs:
        ``"prefix"`` (footnote 1's binary search) or ``"greedy"`` (the
        non-prefix variant, which skips misfits instead of cutting the
        whole tail).
    keep_schedules:
        Retain every epoch's full :class:`~repro.core.scheduler.ScheduleResult`
        on the result (``schedules`` attribute) for post-hoc analysis,
        e.g. reconfiguration churn.  Off by default (memory).
    capacity_profile:
        Optional :class:`~repro.network.capacity.CapacityProfile` in
        *absolute* time: maintenance windows and background load the
        online controller must schedule around.  Re-based onto each
        epoch's grid automatically; slices past the profile's horizon
        fall back to installed capacity.  Applies to the scheduling
        passes; the ``extend`` policy's RET extension search does not
        see it (the resulting schedule still honours it).
    telemetry:
        Optional :class:`~repro.obs.Telemetry` collecting the whole
        run: each epoch's admission + scheduling work is timed under a
        ``"scheduling_pass"`` span, and the scheduler's and RET's own
        records accumulate beneath it.  ``None`` measures nothing.
    fault_schedule:
        Optional :class:`~repro.faults.FaultSchedule` of link failures,
        degradations and repairs.  The controller detects faults at
        epoch boundaries (emitting ``LinkFailed`` / ``LinkDegraded`` /
        ``LinkRestored``), voids in-flight volume a mid-epoch fault
        destroyed (``DeliveryLost``), and replans surviving jobs with
        paths rebuilt around dead links (``JobRescheduled``); jobs whose
        endpoints are disconnected are held until repair.  Admission
        decisions under the ``reject`` policy still use installed
        capacity — the controller only learns of a fault's throughput
        cost at the scheduling stage.
    resilience:
        Optional :class:`~repro.lp.solver.SolveResilience` for every LP
        solve in the run.  Defaults to
        :data:`~repro.lp.solver.DEFAULT_RESILIENCE` when a
        ``fault_schedule`` is given (a fault run should not die on a
        transient solver failure) and to single-shot solving otherwise.
    verify_epochs:
        Run the shared invariant checker
        (:func:`repro.verify.verify_assignment`) on every epoch's
        allocation: the planned LPDAR assignment against the epoch's
        planning capacities, and — when a fault voided in-flight volume
        — the realized allocation against the fault ground truth
        (worst-case capacity over each executed slice).  Any violation
        raises :class:`~repro.errors.ScheduleError` immediately; the
        per-epoch reports accumulate on ``SimulationResult.verification``.
        The fairness floor is not checked here: the scheduler's
        ``alpha`` escalation may legitimately stop at its cap with the
        floor unmet (Remark 1), which the result records as
        ``meets_fairness`` rather than as a defect.
    journal:
        Optional path to a write-ahead epoch journal
        (:class:`~repro.recovery.journal.EpochJournal`).  The run
        commits its full controller state there after every epoch, and
        :meth:`resume` can pick the run up from the last committed
        epoch after a crash.  Incompatible with ``capacity_profile``
        and ``keep_schedules`` (neither is journal-serializable).
    solve_budget:
        Optional :class:`~repro.lp.solver.SolveBudget` wall-clock
        allowance, restarted at every epoch boundary and covering the
        epoch's whole solve chain (RET extension search + scheduling
        pass).  Exhaustion never aborts the epoch: the scheduler's
        degradation ladder commits a cheaper feasible assignment and
        the run emits a :class:`~repro.sim.events.DegradedSolve` event.
    crash_injector:
        Optional :class:`~repro.recovery.crash.CrashInjector` killing
        the run at a named crash point for recovery testing.  The
        ``mid-journal`` point requires a ``journal``.
    warm_start:
        Whether the run's shared :class:`~repro.engine.ModelEngine` may
        reuse path sets, structure layouts and memoized RET probe
        solutions across epochs (the default).  ``False`` — the CLI's
        ``--no-warm-start`` — rebuilds and re-solves everything from
        scratch each epoch; results (records, events, journal bytes)
        are identical either way, only slower.  Recorded in the journal
        header so :meth:`resume` replays with the same setting.
    planner:
        Which scheduler plans each epoch: ``"monolithic"`` (the
        default) uses :class:`~repro.core.scheduler.Scheduler`;
        ``"sharded"`` uses
        :class:`~repro.parallel.sharded.ShardedScheduler`, which
        partitions each epoch's instance into independent subproblems
        and merges the shard grants (see ``docs/parallel.md``).  Every
        merged schedule is equivalence-checked against the monolithic
        contract by the verify layer's oracle; recorded in the journal
        header so :meth:`resume` replans the same way.
    planner_workers:
        Worker processes for concurrent shard solves when ``planner``
        is ``"sharded"`` (``1`` solves shards sequentially in-process).
    verify_solutions:
        Treat solver backends as untrusted (chaos hardening): forwarded
        to the :class:`~repro.core.scheduler.Scheduler`, whose
        stage-1/stage-2 solutions are then checked by
        :func:`repro.verify.verify_schedule` *before* rounding — a
        backend returning a subtly wrong solution raises
        :class:`~repro.errors.ScheduleError` before anything reaches
        the journal.  Monolithic planner only.
    journal_fault_injector:
        Optional chaos hook installed on the run's
        :class:`~repro.recovery.journal.EpochJournal`
        (``fault_injector`` attribute; see :mod:`repro.chaos.inject`).
        An injected write fault surfaces as
        :class:`~repro.errors.JournalWriteError` out of :meth:`run` —
        fail-stop with the prior journal intact, exactly like a full
        disk would.
    control_policy:
        Optional :class:`~repro.control.ControlPolicy` deciding each
        epoch's knobs (alpha escalation, ``k_paths``, admission policy,
        solve-budget split) through the shared
        :class:`~repro.control.EpochKernel`.  ``None`` (the default)
        and :class:`~repro.control.FixedPolicy` are byte-identical to
        each other; adaptive policies are incompatible with ``journal=``
        (a resumed run cannot replay the policy's state) and with the
        sharded planner.  See ``docs/architecture.md``.
    """

    def __init__(
        self,
        network: Network,
        tau: float = 1.0,
        slice_length: float = 1.0,
        policy: AdmissionPolicy = "reduce",
        k_paths: int = 4,
        alpha: float = 0.1,
        ret_b_max: float = 10.0,
        ret_delta: float = 0.1,
        rejection: str = "prefix",
        keep_schedules: bool = False,
        capacity_profile=None,
        telemetry: Telemetry | None = None,
        fault_schedule: FaultSchedule | None = None,
        resilience: SolveResilience | None = None,
        verify_epochs: bool = False,
        journal: str | Path | None = None,
        solve_budget: SolveBudget | None = None,
        crash_injector: CrashInjector | None = None,
        warm_start: bool = True,
        planner: str = "monolithic",
        planner_workers: int = 1,
        verify_solutions: bool = False,
        journal_fault_injector=None,
        control_policy=None,
    ) -> None:
        if tau <= 0 or slice_length <= 0:
            raise ValidationError("tau and slice_length must be positive")
        ratio = tau / slice_length
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise ValidationError(
                f"tau ({tau}) must be a positive multiple of slice_length "
                f"({slice_length}) so epochs align with slice boundaries"
            )
        if policy not in ("reject", "reduce", "extend"):
            raise ValidationError(f"unknown policy {policy!r}")
        if rejection not in ("prefix", "greedy"):
            raise ValidationError(f"unknown rejection variant {rejection!r}")
        self.rejection = rejection
        self.network = network
        self.tau = float(tau)
        self.slice_length = float(slice_length)
        self.slices_per_epoch = int(round(ratio))
        self.policy: AdmissionPolicy = policy
        self.k_paths = k_paths
        self.alpha = alpha
        self.ret_b_max = ret_b_max
        self.ret_delta = ret_delta
        self.keep_schedules = keep_schedules
        if capacity_profile is not None and capacity_profile.network is not network:
            raise ValidationError(
                "capacity profile was built for a different network"
            )
        self.capacity_profile = capacity_profile
        if fault_schedule is not None and fault_schedule.network is not network:
            raise ValidationError(
                "fault schedule was built for a different network"
            )
        self.fault_schedule = fault_schedule
        if resilience is None and fault_schedule is not None:
            resilience = DEFAULT_RESILIENCE
        self.resilience = resilience
        self.verify_epochs = verify_epochs
        self.telemetry = telemetry or NULL_TELEMETRY
        self.warm_start = bool(warm_start)
        # The per-epoch planner.  "sharded" swaps the monolithic
        # Scheduler for repro.parallel's ShardedScheduler (partition +
        # merge); the shard-equivalence oracle guarantees merged
        # schedules stay checker-clean, and RET/admission solves are
        # unaffected.  Recorded in the journal header so a resumed run
        # replans exactly as the original did.
        if planner not in ("monolithic", "sharded"):
            raise ValidationError(f"unknown planner {planner!r}")
        if planner_workers < 1:
            raise ValidationError(
                f"planner_workers must be >= 1, got {planner_workers}"
            )
        self.planner = planner
        self.planner_workers = int(planner_workers)
        self.verify_solutions = bool(verify_solutions)
        self.journal_fault_injector = journal_fault_injector
        # One engine for the whole run: path sets, structure layouts and
        # memoized RET probe solves carry over between epochs.  A cold
        # engine (--no-warm-start) rebuilds everything from scratch each
        # epoch; results are identical either way.
        self._engine = (
            ModelEngine(network, k_paths, telemetry=self.telemetry)
            if self.warm_start
            else ModelEngine.cold(network, k_paths, telemetry=self.telemetry)
        )
        if journal is not None:
            if capacity_profile is not None:
                raise ValidationError(
                    "journal= cannot be combined with capacity_profile=; "
                    "external capacity profiles are not journal-serializable"
                )
            if keep_schedules:
                raise ValidationError(
                    "journal= cannot be combined with keep_schedules=True; "
                    "live ScheduleResult objects are not journal-serializable"
                )
        self.journal_path = Path(journal) if journal is not None else None
        self.solve_budget = solve_budget
        if (
            crash_injector is not None
            and crash_injector.point == "mid-journal"
            and journal is None
        ):
            raise ValidationError(
                'the "mid-journal" crash point needs a journal= path to tear'
            )
        self.crash_injector = crash_injector
        if control_policy is not None and not getattr(
            control_policy, "journal_safe", False
        ):
            # A resumed run replays without the policy object, and the
            # sharded planner has no per-action variant: both would let
            # an adaptive policy fork the recorded timeline.
            if journal is not None:
                raise ValidationError(
                    "journal= requires a journal-safe control policy "
                    "(FixedPolicy or None); adaptive policies cannot be "
                    "replayed on resume"
                )
            if planner == "sharded":
                raise ValidationError(
                    "planner='sharded' supports only journal-safe control "
                    "policies (FixedPolicy or None)"
                )
        self.control_policy = control_policy
        #: Per-``k_paths`` engines and per-action schedulers, built
        #: lazily the first epoch an adaptive policy deviates from the
        #: base knobs and reused for the rest of the run.
        self._engines_by_k: dict[int, ModelEngine] = {}
        self._schedulers_by_action: dict[tuple, Scheduler] = {}

    # ------------------------------------------------------------------
    def run(self, jobs: JobSet, horizon: float | None = None) -> SimulationResult:
        """Simulate until every job is resolved or ``horizon`` is reached."""
        kernel, steps = self.controller(jobs, horizon)
        return self._drive(steps)

    def controller(self, jobs: JobSet, horizon: float | None = None):
        """Start a run in stepwise form: ``(kernel, steps generator)``.

        The generator is the controller loop itself, paused at every
        decision point: it yields ``("decide", observation)`` before
        each scheduling pass (send an
        :class:`~repro.control.EpochAction` to override the knobs, or
        ``None`` to let the kernel's policy decide) and
        ``("outcome", EpochOutcome)`` after each committed epoch; its
        ``StopIteration.value`` is the :class:`SimulationResult`.
        :meth:`run` drives it start to finish sending ``None``;
        :class:`~repro.control.SchedulingEnv` exposes the same pauses
        as a gym-style ``reset``/``step`` interface.
        """
        if len(jobs) == 0:
            raise ValidationError("cannot simulate an empty job set")
        if horizon is None:
            # Generous default: latest deadline plus full RET headroom.
            horizon = (1.0 + self.ret_b_max) * jobs.max_end()
        records = {j.id: JobRecord(j, j.end, j.size) for j in jobs}
        order = [j.id for j in jobs]
        journal = None
        if self.journal_path is not None:
            journal = EpochJournal.create(
                self.journal_path, self._journal_header(jobs, horizon)
            )
            # Attached after create(): the header write must succeed, or
            # there is no journal to fail-stop around.
            journal.fault_injector = self.journal_fault_injector
        return self._controller(
            jobs,
            float(horizon),
            records,
            order,
            events=[],
            now=0.0,
            epoch=0,
            fault_idx=0,
            used_edges={},
            journal=journal,
        )

    @classmethod
    def resume(
        cls,
        path: str | Path,
        telemetry: Telemetry | None = None,
        crash_injector: CrashInjector | None = None,
        journal_fault_injector=None,
    ) -> SimulationResult:
        """Recover a crashed run from its journal and finish it.

        ``crash_injector`` / ``journal_fault_injector`` optionally arm
        the *resumed* run with fresh fault hooks — the chaos engine's
        composed timelines chain several crashes and write faults
        through repeated resumes this way.

        Rebuilds the simulation (network, jobs, configuration, fault
        timeline) from the journal header, replays every committed
        epoch's state, and continues the controller loop from the last
        committed epoch boundary.  A torn or corrupt journal tail is
        dropped silently — the run re-executes from the last valid
        record (solves are deterministic, so the redone epoch commits
        the same state the crash destroyed).  The continued run keeps
        appending to the same journal, healing any torn tail on its
        first commit.

        Raises :class:`~repro.errors.JournalError` when the journal is
        missing or unusable (see
        :func:`~repro.recovery.journal.read_journal`).
        """
        from ..serialization import (
            fault_events_from_list,
            jobs_from_dict,
            network_from_dict,
        )

        replay = read_journal(path)
        header = replay.header
        if header.get("service"):
            raise ValidationError(
                f"{path} is a reservation-service journal; "
                "use ReservationService.resume"
            )
        try:
            network = network_from_dict(header["network"])
            jobs = jobs_from_dict({"jobs": header["jobs"]})
            config = dict(header["config"])
            horizon = float(header["horizon"])
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"journal header at {path} is missing field {exc}"
            ) from None
        fault_schedule = None
        if header.get("faults") is not None:
            fault_schedule = FaultSchedule(
                network, fault_events_from_list(header["faults"])
            )
        solve_budget = (
            SolveBudget(**config["solve_budget"])
            if config.get("solve_budget")
            else None
        )
        resilience = (
            SolveResilience(**config["resilience"])
            if config.get("resilience")
            else None
        )
        sim = cls(
            network,
            tau=config["tau"],
            slice_length=config["slice_length"],
            policy=config["policy"],
            k_paths=config["k_paths"],
            alpha=config["alpha"],
            ret_b_max=config["ret_b_max"],
            ret_delta=config["ret_delta"],
            rejection=config["rejection"],
            verify_epochs=config.get("verify_epochs", False),
            telemetry=telemetry,
            fault_schedule=fault_schedule,
            resilience=resilience,
            journal=path,
            solve_budget=solve_budget,
            warm_start=config.get("warm_start", True),
            planner=config.get("planner", "monolithic"),
            verify_solutions=config.get("verify_solutions", False),
            crash_injector=crash_injector,
            journal_fault_injector=journal_fault_injector,
        )
        records = {j.id: JobRecord(j, j.end, j.size) for j in jobs}
        order = [j.id for j in jobs]
        events: list[Event] = []
        for entry in replay.entries:
            for ev in entry.get("events", ()):
                events.append(event_from_dict(ev))
        now, epoch, fault_idx = 0.0, 0, 0
        used_edges: dict[int | str, frozenset[int]] = {}
        last = replay.last_entry
        if last is not None:
            now = float(last["now"])
            epoch = int(last["epoch"])
            fault_idx = int(last["fault_idx"])
            for rec_data in last["records"]:
                rec = records[rec_data["job"]]
                rec.status = str(rec_data["status"])
                rec.remaining = float(rec_data["remaining"])
                rec.effective_end = float(rec_data["effective_end"])
                ct = rec_data["completion_time"]
                rec.completion_time = float(ct) if ct is not None else None
            used_edges = {
                row[0]: frozenset(int(e) for e in row[1])
                for row in last.get("used_edges", ())
            }
        journal = EpochJournal.open_existing(path)
        journal.fault_injector = journal_fault_injector
        sim.telemetry.count("journal_resumes")
        return sim._run_loop(
            jobs,
            horizon,
            records,
            order,
            events,
            now,
            epoch,
            fault_idx,
            used_edges,
            journal,
        )

    # ------------------------------------------------------------------
    def _journal_header(self, jobs: JobSet, horizon: float) -> dict:
        """The journal's immutable run description (first line)."""
        return simulation_journal_header(
            network=self.network,
            jobs=jobs,
            horizon=horizon,
            tau=self.tau,
            slice_length=self.slice_length,
            policy=self.policy,
            k_paths=self.k_paths,
            alpha=self.alpha,
            ret_b_max=self.ret_b_max,
            ret_delta=self.ret_delta,
            rejection=self.rejection,
            verify_epochs=self.verify_epochs,
            verify_solutions=self.verify_solutions,
            warm_start=self.warm_start,
            planner=self.planner,
            solve_budget=self.solve_budget,
            resilience=self.resilience,
            fault_schedule=self.fault_schedule,
        )

    def _make_kernel(self, now: float, epoch: int, fault_idx: int) -> EpochKernel:
        """One run's shared epoch-control kernel, seeded at a boundary."""
        return EpochKernel(
            tau=self.tau,
            slice_length=self.slice_length,
            base_action=base_action_for(
                alpha=self.alpha,
                k_paths=self.k_paths,
                admission_policy=self.policy,
                rejection=self.rejection,
            ),
            policy=self.control_policy,
            fault_schedule=self.fault_schedule,
            crash_injector=self.crash_injector,
            solve_budget=self.solve_budget,
            engine=self._engine,
            telemetry=self.telemetry,
            now=now,
            epoch=epoch,
            fault_idx=fault_idx,
        )

    def _engine_for(self, k_paths: int) -> ModelEngine:
        """The engine serving a (possibly policy-chosen) ``k_paths``."""
        if k_paths == self.k_paths:
            return self._engine
        if k_paths not in self._engines_by_k:
            self._engines_by_k[k_paths] = (
                ModelEngine(self.network, k_paths, telemetry=self.telemetry)
                if self.warm_start
                else ModelEngine.cold(
                    self.network, k_paths, telemetry=self.telemetry
                )
            )
        return self._engines_by_k[k_paths]

    def _scheduler_for(self, action, engine) -> Scheduler:
        """A scheduler configured for a non-base epoch action (cached)."""
        key = (action.alpha, action.alpha_step, action.alpha_max, action.k_paths)
        if key not in self._schedulers_by_action:
            self._schedulers_by_action[key] = Scheduler(
                self.network,
                k_paths=action.k_paths,
                alpha=action.alpha,
                alpha_step=action.alpha_step,
                alpha_max=action.alpha_max,
                slice_length=self.slice_length,
                telemetry=self.telemetry,
                resilience=self.resilience,
                engine=engine,
                verify_solutions=self.verify_solutions,
            )
        return self._schedulers_by_action[key]

    @staticmethod
    def _drive(steps) -> SimulationResult:
        """Run a controller generator to completion, letting the kernel
        (and its policy, if any) make every decision."""
        try:
            while True:
                steps.send(None)
        except StopIteration as stop:
            return stop.value

    def _run_loop(
        self,
        jobs: JobSet,
        horizon: float,
        records: dict,
        order: list,
        events: list,
        now: float,
        epoch: int,
        fault_idx: int,
        used_edges: dict,
        journal: EpochJournal | None,
    ) -> SimulationResult:
        """Drive the controller from an arbitrary committed state.

        ``run`` enters it with fresh state, ``resume`` with state
        replayed from a journal; everything the loop mutates is either
        an argument or derived from one, so the two entry points share
        every line of epoch logic.
        """
        kernel, steps = self._controller(
            jobs, horizon, records, order, events, now, epoch, fault_idx,
            used_edges, journal,
        )
        return self._drive(steps)

    def _controller(
        self,
        jobs: JobSet,
        horizon: float,
        records: dict,
        order: list,
        events: list,
        now: float,
        epoch: int,
        fault_idx: int,
        used_edges: dict,
        journal: EpochJournal | None,
    ):
        """Build the kernel + paused controller generator pair."""
        kernel = self._make_kernel(now, epoch, fault_idx)
        steps = self._epoch_steps(
            kernel, jobs, horizon, records, order, events, used_edges, journal
        )
        return kernel, steps

    def _epoch_steps(
        self,
        kernel: EpochKernel,
        jobs: JobSet,
        horizon: float,
        records: dict,
        order: list,
        events: list,
        used_edges: dict,
        journal: EpochJournal | None,
    ):
        """The controller loop as a generator over the kernel contract.

        Each epoch runs observe → decide → solve → execute → commit.
        The generator pauses twice per scheduling epoch: at the decide
        point (yielding ``("decide", observation)``; send an action to
        override, ``None`` to let the kernel's policy choose) and after
        the commit (yielding ``("outcome", EpochOutcome)``).  Returns
        the :class:`SimulationResult` via ``StopIteration.value``.
        """
        kept_schedules: list = []
        verification: list = []
        if self.planner == "sharded":
            from ..parallel.sharded import ShardedScheduler

            base_scheduler = ShardedScheduler(
                self.network,
                k_paths=self.k_paths,
                alpha=self.alpha,
                slice_length=self.slice_length,
                telemetry=self.telemetry,
                resilience=self.resilience,
                engine=self._engine,
                workers=self.planner_workers,
            )
        else:
            base_scheduler = Scheduler(
                self.network,
                k_paths=self.k_paths,
                alpha=self.alpha,
                slice_length=self.slice_length,
                telemetry=self.telemetry,
                resilience=self.resilience,
                engine=self._engine,
                verify_solutions=self.verify_solutions,
            )
        base_paths = self._engine.topology.path_sets(jobs.od_pairs())

        journal_mark = len(events)

        def commit(crash_epoch: int | None = None) -> None:
            """Durably record the loop state reached so far."""
            nonlocal journal_mark
            if journal is None:
                return
            entry = simulation_journal_entry(
                order,
                records,
                kernel.now,
                kernel.epoch,
                kernel.fault_idx,
                used_edges,
                events[journal_mark:],
            )
            kernel.commit(journal, entry, crash_epoch=crash_epoch)
            journal_mark = len(events)

        unseen = sorted(
            (rec.job for rec in records.values() if rec.status == "pending"),
            key=lambda j: (j.arrival, str(j.id)),
        )
        while kernel.now < horizon - 1e-9:
            now = kernel.now
            # 1. Collect arrivals up to this epoch.
            while unseen and unseen[0].arrival <= now + 1e-9:
                job = unseen.pop(0)
                events.append(JobArrived(now, job.id))
                records[job.id].status = "active"

            # 1b. Detect faults that struck since the last boundary (the
            # kernel advances the cursor and drops any carried plan whose
            # feasibility certificate predates the strike); translate the
            # raw timeline events into the simulator's detection log.
            detection = kernel.detect_faults(now)
            affected = detection.affected
            for ev in detection.events:
                if isinstance(ev, LinkDown):
                    events.append(LinkFailed(now, ev.source, ev.target, ev.time))
                elif isinstance(ev, WavelengthDegrade):
                    events.append(
                        LinkDegraded(now, ev.source, ev.target, ev.remaining, ev.time)
                    )
                else:
                    events.append(LinkRestored(now, ev.source, ev.target, ev.time))

            # 2. Expire active jobs whose window can no longer fit a slice.
            self._expire_stale(records, now, events)

            # 2b. Flag survivors whose current plan crossed a dead link.
            if affected:
                for rec in records.values():
                    if rec.status != "active":
                        continue
                    if used_edges.get(rec.job.id, frozenset()) & affected:
                        events.append(
                            JobRescheduled(
                                now, rec.job.id, "replanning around failed link"
                            )
                        )

            # 3. Residual instance over future time.
            residual = self._residual_jobs(records, now)
            if residual is None:
                if not unseen:
                    break  # nothing active, nothing to come
                kernel.advance(to=self._advance_to(unseen[0].arrival))
                commit()
                continue

            # 3b. The decide point: observe, then let the policy (or a
            # SchedulingEnv driver) pick this epoch's knobs.  Without a
            # policy the observation is skipped and the base action is
            # returned untouched — the zero-overhead default path.
            obs = None
            if kernel.wants_observation:
                active = [r for r in records.values() if r.status == "active"]
                obs = kernel.observe(
                    backlog=len(active),
                    total_remaining=sum(r.remaining for r in active),
                    queue_depth=len(unseen),
                )
            action = yield ("decide", obs)
            if action is None:
                action = kernel.decide(obs)
            else:
                action = action.validate()
            engine = self._engine_for(action.k_paths)
            epoch_scheduler = (
                base_scheduler
                if action == kernel.base_action
                else self._scheduler_for(action, engine)
            )
            budget = kernel.budget_for(action)

            kernel.crash_point("pre-solve")
            if budget is not None:
                # A fresh allowance per epoch: the budget covers the
                # whole solve chain (RET + scheduling) for this pass.
                budget.restart()

            # 4. Admission control + scheduling, timed as one pass (the
            #    span replaces the old hand-rolled perf_counter block and
            #    also feeds the SchedulingPass event's solve time).
            with self.telemetry.span("scheduling_pass") as pass_span:
                epoch_paths = None
                if self.fault_schedule is not None:
                    residual, epoch_paths = self._route_around_faults(
                        residual, now, engine
                    )
                if residual is not None:
                    residual = self._apply_policy(
                        residual, records, now, events, epoch_paths,
                        action=action, engine=engine, budget=budget,
                    )
                if residual is not None:
                    grid = TimeGrid.covering(
                        max(residual.max_end(), now + self.tau),
                        self.slice_length,
                        start=now,
                    )
                    profile = self._epoch_profile(grid, now)
                    if epoch_paths is None and profile is None:
                        epoch_paths = (
                            base_paths
                            if engine is self._engine
                            else engine.topology.path_sets(residual.od_pairs())
                        )
                    result = epoch_scheduler.schedule(
                        residual,
                        grid,
                        capacity_profile=profile,
                        path_sets=epoch_paths,
                        budget=budget,
                    )
            if residual is not None and self.telemetry.enabled:
                # Per-epoch engine reuse evidence (telemetry-only — the
                # records never enter the journal, so warm/cold
                # equivalence is untouched).
                self.telemetry.record(
                    "epoch_cache_stats", epoch=kernel.epoch,
                    **kernel.cache_delta(),
                )
            if residual is None:
                kernel.advance()
                commit()
                continue
            kernel.crash_point("post-solve")
            events.append(
                SchedulingPass(
                    now,
                    kernel.epoch,
                    len(residual),
                    result.zstar,
                    result.overloaded,
                    pass_span.elapsed,
                    mean_link_utilization(result.structure, result.x),
                )
            )
            if result.degraded is not None:
                events.append(
                    DegradedSolve(
                        now, kernel.epoch, result.degraded,
                        result.degraded_reason or "",
                    )
                )

            if self.keep_schedules:
                kept_schedules.append((kernel.epoch, result))
            if self.fault_schedule is not None:
                used_edges.update(
                    shared_used_edges(result.structure, result.x, _VOLUME_TOL)
                )
            if self.verify_epochs:
                self._verify_planned(result, verification)

            # 5. Execute the first tau worth of slices, then commit the
            #    post-execution state as this epoch's journal record.
            delivered, completed = self._execute(
                result, records, now, events, verification
            )
            kernel.crash_point("pre-commit")
            pass_epoch = kernel.epoch
            kernel.advance()
            commit(crash_epoch=pass_epoch)
            kernel.crash_point("post-commit", pass_epoch)
            outcome = EpochOutcome(
                epoch=pass_epoch,
                delivered=delivered,
                completed=completed,
                zstar=result.zstar,
                overloaded=result.overloaded,
                degraded=result.degraded is not None,
            )
            kernel.feedback(obs, action, outcome)
            yield ("outcome", outcome)

        self._expire_stale(records, horizon, events, final=True)
        if journal is not None:
            journal.close()  # run finished: release the append lock
        return SimulationResult(
            records=tuple(records[i] for i in order),
            events=tuple(events),
            horizon=float(horizon),
            schedules=tuple(kept_schedules),
            verification=tuple(verification),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _advance_to(self, t: float) -> float:
        """Next epoch boundary at or after ``t``."""
        return np.ceil(t / self.tau - 1e-9) * self.tau

    def _route_around_faults(
        self, residual: JobSet, now: float, engine: ModelEngine | None = None
    ) -> tuple[JobSet | None, dict | None]:
        """Rebuild paths without currently failed links; hold cut-off jobs.

        Jobs whose endpoints are disconnected by the failures cannot be
        scheduled this epoch; they stay ``active`` (delivering nothing)
        until a repair reconnects them or their window expires.
        """
        failed = self.fault_schedule.failed_edges_at(now)
        if not failed:
            return residual, None
        engine = engine if engine is not None else self._engine
        epoch_paths = engine.topology.path_sets(
            residual.od_pairs(), banned_edges=failed
        )
        routable = [j for j in residual if epoch_paths[(j.source, j.dest)]]
        if len(routable) == len(residual):
            return residual, epoch_paths
        return (JobSet(routable) if routable else None), epoch_paths

    def _epoch_profile(self, grid: TimeGrid, now: float):
        """Planning capacities for one epoch: maintenance ∧ fault state.

        The fault side is the *snapshot* at ``now`` held constant: the
        controller knows which links are currently down or degraded but
        not when they will be repaired, so it plans as if the present
        state persists.
        """
        profile = (
            self.capacity_profile.for_grid(grid)
            if self.capacity_profile is not None
            else None
        )
        if self.fault_schedule is not None:
            snap = self.fault_schedule.snapshot_profile(grid, now)
            if profile is None:
                profile = snap
            else:
                profile = CapacityProfile(
                    self.network, grid, np.minimum(profile.matrix, snap.matrix)
                )
        return profile

    def _residual_jobs(self, records: dict, now: float) -> JobSet | None:
        """Unfinished admitted jobs, re-windowed to start at ``now``."""
        out = []
        for rec in records.values():
            if rec.status != "active":
                continue
            start = max(rec.job.start, now)
            if window_closed(rec.job.start, rec.effective_end, now,
                             self.slice_length):
                continue  # expiry pass will catch it
            out.append(
                replace(
                    rec.job,
                    size=rec.remaining,
                    start=start,
                    end=rec.effective_end,
                    arrival=min(rec.job.arrival, start),
                )
            )
        return JobSet(out) if out else None

    def _expire_stale(
        self, records: dict, now: float, events: list, final: bool = False
    ) -> None:
        """Expire active jobs whose window can no longer hold one slice.

        The simulator applies the shared
        :func:`~repro.control.kernel.window_closed` predicate to the
        *effective* (possibly RET-extended) deadline — unlike the
        service, which expires against the committed end time — and
        additionally force-expires everything at the horizon
        (``final=True``).
        """
        for rec in records.values():
            if rec.status != "active":
                continue
            if final or window_closed(rec.job.start, rec.effective_end, now,
                                      self.slice_length):
                rec.status = "expired"
                events.append(JobExpired(now, rec.job.id, rec.remaining))

    def _apply_policy(
        self,
        residual: JobSet,
        records: dict,
        now: float,
        events: list,
        path_sets: dict | None = None,
        action=None,
        engine: ModelEngine | None = None,
        budget: SolveBudget | None = None,
    ) -> JobSet | None:
        """Admission action; may reject jobs or extend deadlines in place.

        ``path_sets`` carries the fault-aware routes (failed links
        banned) so the ``extend`` policy's RET search cannot plan an
        extension over capacity that no longer exists.  ``action`` /
        ``engine`` / ``budget`` override the run's configured knobs for
        one epoch (a control policy's decision); left at ``None`` they
        fall back to the constructor configuration.
        """
        policy = self.policy if action is None else action.admission_policy
        rejection = self.rejection if action is None else action.rejection
        k_paths = self.k_paths if action is None else action.k_paths
        engine = engine if engine is not None else self._engine
        if action is None:
            budget = self.solve_budget
        if policy == "reduce":
            return residual

        if policy == "reject":
            grid = TimeGrid.covering(
                max(residual.max_end(), now + self.tau), self.slice_length, start=now
            )
            admit = admit_greedy if rejection == "greedy" else admit_max_prefix
            decision = admit(
                self.network,
                residual,
                grid,
                k_paths,
                threshold=1.0,
                key=by_arrival,
                engine=engine,
                budget=budget,
                path_sets=path_sets,
            )
            if decision.degraded:
                events.append(
                    DegradedSolve(
                        now,
                        int(round(now / self.tau)),
                        "admission",
                        "solve budget expired during the admission probe",
                    )
                )
            for job in decision.rejected:
                rec = records[job.id]
                # Never evict a job that already received service; it
                # simply stays admitted (best-effort) this epoch.
                if rec.remaining < rec.job.size - _VOLUME_TOL:
                    continue
                rec.status = "rejected"
                events.append(
                    JobRejected(now, job.id, "insufficient capacity (Z* < 1)")
                )
            admitted = [j for j in residual if records[j.id].status == "active"]
            return JobSet(admitted) if admitted else None

        # policy == "extend": stretch deadlines only when overloaded.
        try:
            ret = solve_ret(
                self.network,
                residual,
                slice_length=self.slice_length,
                k_paths=k_paths,
                b_max=self.ret_b_max,
                delta=self.ret_delta,
                path_sets=path_sets,
                telemetry=self.telemetry,
                resilience=self.resilience,
                budget=budget,
                engine=engine,
            )
        except (ScheduleError, BudgetExceededError):
            # No completing extension found (or no time left to look for
            # one): run best-effort; expiry will record the loss.
            return residual
        if ret.b_final > 0:
            out = []
            for job in residual:
                rec = records[job.id]
                new_end = (1.0 + ret.b_final) * job.end
                if new_end > rec.effective_end + 1e-9:
                    events.append(
                        JobDeadlineExtended(now, job.id, rec.effective_end, new_end)
                    )
                    rec.effective_end = new_end
                out.append(replace(job, end=new_end))
            return JobSet(out)
        return residual

    def _verify_planned(self, result, verification: list) -> None:
        """Check an epoch's planned LPDAR assignment; fail fast on errors.

        Fairness is deliberately unchecked: escalation may stop at
        ``alpha_max`` with the floor unmet, which is a recorded outcome
        (``result.meets_fairness``), not an invariant violation.
        """
        from ..verify.checker import verify_assignment

        report = verify_assignment(result.structure, result.x, integral=True)
        verification.append(report)
        report.raise_if_failed()

    def _verify_realized(
        self, structure, x_eff: np.ndarray, executed: list, verification: list
    ) -> None:
        """Check a fault-voided allocation against the fault ground truth.

        Voiding scales grants fractionally, so integrality no longer
        applies; capacity on executed slices is the worst case the
        faults left standing (``min_capacity_over``), intersected with
        the planning capacities the original assignment honoured.
        """
        from ..verify.checker import verify_assignment

        grid = structure.grid
        cap = structure.capacity_grid()
        for j in executed:
            caps = self.fault_schedule.min_capacity_over(
                grid.slice_start(j), grid.slice_end(j)
            )
            cap[:, j] = np.minimum(cap[:, j], caps)
        report = verify_assignment(structure, x_eff, integral=False, capacity=cap)
        verification.append(report)
        report.raise_if_failed()

    def _void_lost_volume(
        self, structure, x: np.ndarray, executed: list
    ) -> np.ndarray:
        """Scale executed grants down to what the faulted links carried.

        The schedule was planned against the epoch-boundary snapshot; a
        fault striking *inside* the epoch silently removes capacity the
        plan assumed.  Per executed slice, every edge whose planned load
        exceeds its worst-case actual capacity scales the grants
        crossing it by ``capacity / load`` (to zero on a full cut); a
        grant's surviving fraction is the minimum over its path's edges,
        which guarantees delivered volume never exceeds actual capacity
        on any (edge, slice).
        """
        fs = self.fault_schedule
        grid = structure.grid
        x_eff = x.copy()
        changed = False
        for j in executed:
            caps = fs.min_capacity_over(grid.slice_start(j), grid.slice_end(j))
            cols = np.flatnonzero((structure.col_slice == j) & (x > _VOLUME_TOL))
            if cols.size == 0:
                continue
            load = np.zeros(self.network.num_edges)
            edge_lists = []
            for c in cols:
                i = int(structure.col_job[c])
                path = structure.paths[i][int(structure.col_path[c])]
                edge_lists.append(path.edge_ids)
                for e in path.edge_ids:
                    load[e] += x[c]
            factor = np.ones(self.network.num_edges)
            over = load > caps + _VOLUME_TOL
            factor[over] = caps[over] / load[over]
            for c, edge_ids in zip(cols, edge_lists):
                f = min(factor[e] for e in edge_ids)
                if f < 1.0:
                    x_eff[c] = x[c] * f
                    changed = True
        return x_eff if changed else x

    def _execute(
        self,
        result,
        records: dict,
        now: float,
        events: list,
        verification: list | None = None,
    ) -> tuple[float, int]:
        """Deliver the first epoch's slices of the freshly computed schedule.

        Returns ``(delivered volume, completions)`` for the epoch — the
        outcome signal the control kernel feeds back to its policy.
        """
        delivered = 0.0
        completions = 0
        structure = result.structure
        grid = structure.grid
        executed = [
            j
            for j in range(grid.num_slices)
            if grid.slice_start(j) < now + self.tau - 1e-9
        ]
        if not executed:
            return delivered, completions
        x = np.asarray(result.x, dtype=float)
        x_eff = x
        if self.fault_schedule is not None:
            x_eff = self._void_lost_volume(structure, x, executed)
            if self.verify_epochs and x_eff is not x and verification is not None:
                self._verify_realized(structure, x_eff, executed, verification)
        delivery = per_slice_delivery(structure, x_eff)
        planned = delivery if x_eff is x else per_slice_delivery(structure, x)
        rate = self.network.wavelength_rate
        for i, job in enumerate(structure.jobs):
            rec = records[job.id]
            volume = float(delivery[i, executed].sum()) * rate
            planned_volume = float(planned[i, executed].sum()) * rate
            lost = min(planned_volume, rec.remaining) - min(volume, rec.remaining)
            if lost > _VOLUME_TOL:
                events.append(
                    DeliveryLost(
                        now + self.tau,
                        job.id,
                        lost,
                        "link capacity lost mid-epoch",
                    )
                )
            if volume <= _VOLUME_TOL:
                continue
            volume = min(volume, rec.remaining)
            rec.remaining -= volume
            delivered += volume
            events.append(JobProgress(now + self.tau, job.id, volume, rec.remaining))
            if rec.remaining <= _VOLUME_TOL * max(rec.job.size, 1.0):
                rec.remaining = 0.0
                rec.status = "completed"
                completions += 1
                # Completion lands at the end of the last executed slice
                # that actually carried volume for this job.
                carrying = [j for j in executed if delivery[i, j] > 0]
                rec.completion_time = grid.slice_end(carrying[-1])
                events.append(
                    JobCompleted(rec.completion_time, job.id, rec.met_deadline)
                )
        return delivered, completions
