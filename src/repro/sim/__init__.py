"""Simulation substrate: the periodic controller loop and its metrics."""

from .events import (
    Event,
    JobAdmitted,
    JobArrived,
    JobCompleted,
    JobDeadlineExtended,
    JobExpired,
    JobProgress,
    JobRejected,
    JobSizeReduced,
    SchedulingPass,
)
from .metrics import SimulationSummary, summarize
from .simulator import AdmissionPolicy, JobRecord, Simulation, SimulationResult

__all__ = [
    "Simulation",
    "SimulationResult",
    "SimulationSummary",
    "summarize",
    "AdmissionPolicy",
    "JobRecord",
    "Event",
    "JobArrived",
    "JobAdmitted",
    "JobRejected",
    "JobSizeReduced",
    "JobDeadlineExtended",
    "SchedulingPass",
    "JobProgress",
    "JobCompleted",
    "JobExpired",
]
