"""Simulation substrate: the periodic controller loop and its metrics."""

from .events import (
    DeliveryLost,
    Event,
    JobAdmitted,
    JobArrived,
    JobCompleted,
    JobDeadlineExtended,
    JobExpired,
    JobProgress,
    JobRejected,
    JobRescheduled,
    JobSizeReduced,
    LinkDegraded,
    LinkFailed,
    LinkRestored,
    SchedulingPass,
)
from .metrics import SimulationSummary, summarize
from .simulator import AdmissionPolicy, JobRecord, Simulation, SimulationResult

__all__ = [
    "Simulation",
    "SimulationResult",
    "SimulationSummary",
    "summarize",
    "AdmissionPolicy",
    "JobRecord",
    "Event",
    "JobArrived",
    "JobAdmitted",
    "JobRejected",
    "JobSizeReduced",
    "JobDeadlineExtended",
    "SchedulingPass",
    "JobProgress",
    "JobCompleted",
    "JobExpired",
    "LinkFailed",
    "LinkDegraded",
    "LinkRestored",
    "DeliveryLost",
    "JobRescheduled",
]
