"""Decomposed solves: partition, solve shards concurrently, merge grants.

:class:`ShardedScheduler` is a drop-in for
:class:`~repro.core.scheduler.Scheduler` that splits each instance into
the independent subproblems found by
:func:`~repro.parallel.partition.partition_structure`, solves them
through the :mod:`solver-backend registry <repro.engine.backend>` —
concurrently across worker processes when ``workers > 1`` — and merges
the per-shard grants back into one :class:`ScheduleResult` over the
monolithic structure.

Why the merge is sound (and when it is *identical*):

* Shards share no capacity row, so stage 1 decomposes exactly:
  the global ``Z*`` is the minimum of the shard optima.
* Stage 2 receives the *global* ``Z*`` and the *globally normalized*
  per-job weights, so each shard LP is the exact restriction of the
  monolithic LP to the shard's columns; concatenating shard optima is a
  monolithic optimum.
* Algorithm 1 only debits residual capacity on a job's own path edges,
  so running it per shard equals running it monolithically up to the
  order jobs are visited — which within a shard is the monolithic
  order.
* The Remark-1 alpha escalation loop re-checks the fairness floor on
  the **merged** integer schedule each round, mirroring the monolithic
  loop's decision exactly.

With a single shard the pipeline degenerates to the monolithic one on
bit-identical LPs, so grants match exactly.  With several shards the
merged result optimizes the same LPs but may land on a different
optimal vertex than the monolithic solve; the
:func:`repro.verify.oracles.sharded_vs_monolithic` oracle pins down
what must still agree (``Z*``, LP objective, LPDAR objective within
``DEFAULT_GAP_BOUND``) and every merged schedule passes the shared
invariant checker.

Out of scope — delegated to the monolithic scheduler unchanged: solves
under a :class:`~repro.lp.solver.SolveBudget` (the degradation ladder
is inherently global) and the ``greedy_order="random"`` / explicit
``rng`` variants (per-shard rng streams cannot replay the monolithic
draw sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.lpdar import GreedyOrder, LpdarResult, lpdar
from ..core.scheduler import ScheduleResult, Scheduler
from ..core.stage2 import Stage2Result, build_stage2_lp, objective_weights
from ..core.throughput import Stage1Result, build_stage1_lp
from ..engine import build_structure
from ..engine.engine import ModelEngine
from ..errors import SolverError, ValidationError
from ..lp.model import ProblemStructure
from ..lp.solver import LPSolution, SolveBudget, SolveResilience, solve_lp
from ..network.graph import Network
from ..network.paths import Path
from ..obs import Telemetry
from ..timegrid import TimeGrid
from ..workload.jobs import JobSet
from .fleet import TaskSpec, run_fleet
from .partition import Shard, partition_structure

__all__ = ["ShardSolveSpec", "ShardedScheduler", "fleet_shard_solve"]


@dataclass(frozen=True)
class ShardSolveSpec:
    """Picklable payload describing one shard solve.

    Carries everything a worker process needs to rebuild the shard's
    :class:`~repro.lp.model.ProblemStructure` (the full network and
    grid are shared — capacity rows only materialize for (edge, slice)
    pairs the shard's paths actually use) plus the solve parameters.
    ``stage`` selects the stage-1 ``Z*`` solve or the stage-2 + LPDAR
    pass.
    """

    network: Network
    jobs: JobSet
    grid: TimeGrid
    k_paths: int
    paths: tuple[tuple[Path, ...], ...]
    capacity_profile: object = None
    backend: str = "highs"
    resilience: SolveResilience | None = None
    stage: str = "stage1"
    zstar: float = 0.0
    alpha: float = 0.0
    weights: np.ndarray | None = None
    greedy_order: GreedyOrder = "paper"
    cap_at_target: bool = False


def _shard_structure(spec: ShardSolveSpec) -> ProblemStructure:
    """Rebuild the shard's structure from its spec (worker side)."""
    path_sets: dict = {}
    for job, paths in zip(spec.jobs, spec.paths):
        path_sets.setdefault((job.source, job.dest), list(paths))
    return build_structure(
        spec.network,
        spec.jobs,
        spec.grid,
        k_paths=spec.k_paths,
        path_sets=path_sets,
        capacity_profile=spec.capacity_profile,
    )


def fleet_shard_solve(
    spec: ShardSolveSpec, structure: ProblemStructure | None = None
) -> dict:
    """Fleet task: solve one shard; returns plain picklable arrays.

    Solves through :func:`~repro.lp.solver.solve_lp`, i.e. whatever
    :class:`~repro.engine.backend.SolverBackend` ``spec.backend``
    names in the registry.
    """
    if structure is None:
        structure = _shard_structure(spec)
    if spec.stage == "stage1":
        solution = solve_lp(
            build_stage1_lp(structure),
            backend=spec.backend,
            label="stage1",
            resilience=spec.resilience,
        )
        return {"zstar": float(solution.x[-1]), "x": solution.x[:-1].copy()}
    if spec.stage != "stage2":
        raise ValidationError(f"unknown shard stage {spec.stage!r}")
    solution = solve_lp(
        build_stage2_lp(structure, spec.zstar, spec.alpha, spec.weights),
        backend=spec.backend,
        label="stage2",
        resilience=spec.resilience,
    )
    rounded = lpdar(
        structure,
        solution.x,
        order=spec.greedy_order,
        cap_at_target=spec.cap_at_target,
    )
    return {
        "x_lp": rounded.x_lp,
        "x_lpd": rounded.x_lpd,
        "x_lpdar": rounded.x_lpdar,
        "objective": float(solution.objective),
    }


class ShardedScheduler:
    """Scheduler facade solving each instance as independent shards.

    Accepts the same scheduling knobs as
    :class:`~repro.core.scheduler.Scheduler` (it owns one internally
    for structure building, validation and the delegation cases) plus:

    workers:
        Worker processes for concurrent shard solves.  ``1`` (the
        default) solves shards sequentially in-process, reusing the
        engine's layout caches across alpha rounds; results are
        identical either way.
    backend:
        Registered :class:`~repro.engine.backend.SolverBackend` name
        used for every shard solve.
    """

    def __init__(
        self,
        network: Network,
        k_paths: int = 4,
        alpha: float = 0.1,
        alpha_step: float = 0.1,
        alpha_max: float = 0.5,
        slice_length: float = 1.0,
        greedy_order: GreedyOrder = "paper",
        cap_at_target: bool = False,
        rng: np.random.Generator | None = None,
        telemetry: Telemetry | None = None,
        resilience: SolveResilience | None = None,
        budget: SolveBudget | None = None,
        engine: ModelEngine | None = None,
        workers: int = 1,
        backend: str = "highs",
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self._mono = Scheduler(
            network,
            k_paths=k_paths,
            alpha=alpha,
            alpha_step=alpha_step,
            alpha_max=alpha_max,
            slice_length=slice_length,
            greedy_order=greedy_order,
            cap_at_target=cap_at_target,
            rng=rng,
            telemetry=telemetry,
            resilience=resilience,
            budget=budget,
            engine=engine,
        )
        self.workers = int(workers)
        self.backend = backend

    @property
    def network(self) -> Network:
        return self._mono.network

    @property
    def engine(self) -> ModelEngine:
        return self._mono.engine

    @property
    def telemetry(self):
        return self._mono.telemetry

    def build_structure(self, jobs, grid=None, path_sets=None, capacity_profile=None):
        """See :meth:`repro.core.scheduler.Scheduler.build_structure`."""
        return self._mono.build_structure(
            jobs, grid, path_sets=path_sets, capacity_profile=capacity_profile
        )

    def partition(
        self,
        jobs: JobSet,
        grid: TimeGrid | None = None,
        path_sets=None,
        capacity_profile=None,
    ) -> list[Shard]:
        """The shards :meth:`schedule` would solve for this instance."""
        structure = self.build_structure(
            jobs, grid, path_sets=path_sets, capacity_profile=capacity_profile
        )
        return partition_structure(structure)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        jobs: JobSet,
        grid: TimeGrid | None = None,
        weights: np.ndarray | None = None,
        capacity_profile=None,
        path_sets=None,
        budget: SolveBudget | None = None,
    ) -> ScheduleResult:
        """Partition, solve shards (concurrently), merge, escalate alpha.

        Same contract as
        :meth:`repro.core.scheduler.Scheduler.schedule`; calls with a
        budget or a randomized greedy order delegate to the monolithic
        scheduler (see the module docstring).
        """
        mono = self._mono
        budget = budget if budget is not None else mono.budget
        if budget is not None or mono.greedy_order == "random" or mono.rng is not None:
            return mono.schedule(
                jobs,
                grid,
                weights=weights,
                capacity_profile=capacity_profile,
                path_sets=path_sets,
                budget=budget,
            )
        telemetry = mono.telemetry
        with telemetry.span("sharded_schedule"):
            structure = mono.build_structure(
                jobs, grid, path_sets=path_sets, capacity_profile=capacity_profile
            )
            if weights is None and any(j.weight is not None for j in jobs):
                weights = np.array(
                    [j.weight if j.weight is not None else j.size for j in jobs]
                )
            # Monolithic-scale column coefficients: validates weights up
            # front and prices the merged LP solution exactly as the
            # monolithic stage-2 objective would.
            coeffs = objective_weights(structure, weights)
            if weights is None:
                w_global = structure.demands / structure.demands.sum()
            else:
                w_global = np.asarray(weights, dtype=float)

            shards = partition_structure(structure)
            telemetry.count("sharded_solves")
            telemetry.count("shard_solves", len(shards))

            base_specs = [
                self._shard_spec(structure, shard, w_global) for shard in shards
            ]
            local_structures = None
            if self.workers == 1:
                local_structures = [
                    mono.engine.substructure(structure, shard.job_indices)
                    for shard in shards
                ]

            stage1_outs = self._solve_shards(base_specs, local_structures)
            zstar = min(out["zstar"] for out in stage1_outs)
            x1 = np.zeros(structure.num_cols)
            for shard, out in zip(shards, stage1_outs):
                self._merge_into(structure, shard, out["x"], x1)
            stage1 = Stage1Result(
                zstar=zstar,
                x=x1,
                solution=LPSolution(x=np.append(x1, zstar), objective=zstar),
            )

            alpha = mono.alpha
            escalations = 0
            while True:
                specs = [
                    replace(spec, stage="stage2", zstar=zstar, alpha=alpha)
                    for spec in base_specs
                ]
                outs = self._solve_shards(specs, local_structures)
                merged = {}
                for key in ("x_lp", "x_lpd", "x_lpdar"):
                    vec = np.zeros(structure.num_cols)
                    for shard, out in zip(shards, outs):
                        self._merge_into(structure, shard, out[key], vec)
                    merged[key] = vec
                objective = float(coeffs @ merged["x_lp"])
                stage2 = Stage2Result(
                    x=merged["x_lp"],
                    objective=objective,
                    zstar=zstar,
                    alpha=alpha,
                    solution=LPSolution(x=merged["x_lp"], objective=objective),
                )
                result = ScheduleResult(
                    structure=structure,
                    stage1=stage1,
                    stage2=stage2,
                    assignments=LpdarResult(**merged),
                    alpha=alpha,
                    alpha_escalations=escalations,
                )
                if (
                    mono.alpha_step <= 0
                    or alpha >= mono.alpha_max
                    or result.meets_fairness("lpdar")
                ):
                    telemetry.count("schedule_passes")
                    telemetry.count("alpha_escalations", escalations)
                    break
                alpha = min(alpha + mono.alpha_step, mono.alpha_max)
                escalations += 1
        # Same cross-epoch seeding as the monolithic scheduler: the
        # merged integer plan is capacity-feasible, so it serves as the
        # next epoch's RET feasibility witness.
        mono.engine.carry_plan(result.structure, result.x)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _shard_spec(
        self, structure: ProblemStructure, shard: Shard, w_global: np.ndarray
    ) -> ShardSolveSpec:
        jobs = JobSet([structure.jobs[i] for i in shard.job_indices])
        paths = tuple(
            tuple(structure.paths[i]) for i in shard.job_indices
        )
        return ShardSolveSpec(
            network=structure.network,
            jobs=jobs,
            grid=structure.grid,
            k_paths=structure.k_paths,
            paths=paths,
            capacity_profile=structure.capacity_profile,
            backend=self.backend,
            resilience=self._mono.resilience,
            weights=w_global[list(shard.job_indices)],
            greedy_order=self._mono.greedy_order,
            cap_at_target=self._mono.cap_at_target,
        )

    def _solve_shards(
        self,
        specs: list[ShardSolveSpec],
        structures: list[ProblemStructure] | None,
    ) -> list[dict]:
        """Solve every shard, in-process or across the fleet pool."""
        if self.workers == 1 or len(specs) == 1:
            if structures is None:
                return [fleet_shard_solve(spec) for spec in specs]
            return [
                fleet_shard_solve(spec, structure)
                for spec, structure in zip(specs, structures)
            ]
        results = run_fleet(
            [
                TaskSpec("shard_solve", {"spec": spec}, label=f"shard[{i}]")
                for i, spec in enumerate(specs)
            ],
            jobs=min(self.workers, len(specs)),
        )
        outs = []
        for result in results:
            if not result.ok:
                raise SolverError(
                    f"shard solve {result.label} failed: "
                    f"{result.error_type}: {result.error}"
                )
            outs.append(result.value)
        return outs

    @staticmethod
    def _merge_into(
        structure: ProblemStructure,
        shard: Shard,
        values: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Scatter a shard-local column vector into the monolithic one.

        Shard structures share the parent's grid and per-job path lists,
        so a job's column block has the same width in both layouts; only
        the offsets differ.
        """
        offset = 0
        for i in shard.job_indices:
            width = int(structure.num_paths[i] * structure.span[i])
            cols = structure.job_columns(i)
            out[cols] = values[offset : offset + width]
            offset += width
        if offset != len(values):
            raise SolverError(
                f"shard solution has {len(values)} columns, "
                f"expected {offset}"
            )
