"""Decompose a :class:`~repro.lp.model.ProblemStructure` into shards.

Two jobs *conflict* when some edge appears in both jobs' allowed path
sets **and** their slice windows overlap — exactly the condition under
which they can share a capacity row ``(edge, slice)``.  Connected
components of that conflict graph are independent subproblems: no
constraint of the stage-1/stage-2 LPs couples columns across
components, so the monolithic LP is block-diagonal over them and

* stage 1 decomposes as ``Z* = min over shards of the shard's Z*``
  (the binding job lives in exactly one shard),
* given the global ``Z*``, the stage-2 objective and its fairness
  floor are separable per shard,
* Algorithm 1's greedy pass only debits residual capacity on a job's
  own path edges, so it is likewise separable.

This single criterion subsumes both decompositions named in the
roadmap: jobs in different *network components* (including components
created by fault-driven edge bans — a banned edge appears in no path
set) never share an edge, and jobs in disjoint *time blocks* never
overlap a slice, so both split into separate shards automatically.

The partition is computed with a union-find sweep rather than an
explicit pairwise conflict test: for each edge, jobs using it are
sorted by window start and unioned while their windows chain-overlap —
``O(sum_jobs paths * edges + E * J log J)`` instead of ``O(J^2)``.
Shards are emitted in ascending order of their smallest job index, so
the decomposition is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lp.model import ProblemStructure

__all__ = ["Shard", "partition_structure"]


class _UnionFind:
    """Plain union-find with path halving, over ``range(n)``."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


@dataclass(frozen=True)
class Shard:
    """One independent subproblem of a partitioned structure.

    Attributes
    ----------
    index:
        Position in the deterministic shard ordering.
    job_indices:
        Indices (into the parent structure's job list) of this shard's
        jobs, ascending.
    edge_ids:
        Every edge any of the shard's allowed paths crosses.  Disjoint
        from every other shard's edges *within overlapping slices*;
        two shards may share an edge only when their windows never
        overlap on it.
    slice_window:
        ``(first, last_exclusive)`` hull of the shard's job windows on
        the parent grid.
    """

    index: int
    job_indices: tuple[int, ...]
    edge_ids: frozenset[int]
    slice_window: tuple[int, int]


def partition_structure(structure: ProblemStructure) -> list[Shard]:
    """Split ``structure`` into independent shards (conflict components).

    Always returns at least one shard; every job belongs to exactly one
    shard and no shard is empty.  A structure whose jobs all conflict
    (directly or transitively) yields a single shard covering
    everything — the decomposed solve then reduces to the monolithic
    one by construction.
    """
    num_jobs = len(structure.jobs)
    job_edges: list[frozenset[int]] = [
        frozenset(
            edge for path in structure.paths[i] for edge in path.edge_ids
        )
        for i in range(num_jobs)
    ]
    windows = [
        (int(structure.first_slice[i]), int(structure.first_slice[i] + structure.span[i]))
        for i in range(num_jobs)
    ]

    by_edge: dict[int, list[int]] = {}
    for i, edges in enumerate(job_edges):
        for edge in edges:
            by_edge.setdefault(edge, []).append(i)

    uf = _UnionFind(num_jobs)
    for users in by_edge.values():
        if len(users) < 2:
            continue
        users.sort(key=lambda i: (windows[i][0], windows[i][1], i))
        anchor = users[0]
        reach = windows[anchor][1]
        for i in users[1:]:
            start, end = windows[i]
            if start < reach:
                # Sorted by start, so a window starting before the
                # group's running max end overlaps the member attaining
                # it — union with any member keeps the group connected.
                uf.union(anchor, i)
                reach = max(reach, end)
            else:
                anchor = i
                reach = end

    groups: dict[int, list[int]] = {}
    for i in range(num_jobs):
        groups.setdefault(uf.find(i), []).append(i)

    shards = []
    for index, root in enumerate(sorted(groups, key=lambda r: min(groups[r]))):
        members = tuple(sorted(groups[root]))
        edges = frozenset().union(*(job_edges[i] for i in members))
        first = min(windows[i][0] for i in members)
        last = max(windows[i][1] for i in members)
        shards.append(
            Shard(
                index=index,
                job_indices=members,
                edge_ids=edges,
                slice_window=(first, last),
            )
        )
    return shards
