"""Parallel execution layer: fleet mode and decomposed (sharded) solves.

Two independent levels of parallelism, per the roadmap's sharding item:

* **Fleet mode** (:mod:`repro.parallel.fleet`) — fan whole tasks
  (seeded fuzz scenarios, experiment cells) out to a pool of worker
  processes as picklable :class:`TaskSpec` envelopes; results come
  back in spec order, so a run is deterministic regardless of
  completion order.  ``repro fleet`` and ``repro verify --fuzz --jobs``
  sit on top of this.
* **Decomposed solves** (:mod:`repro.parallel.partition` /
  :mod:`repro.parallel.sharded`) — split one scheduling instance into
  independent subproblems (conflict-graph components over shared edges
  and overlapping windows, which subsumes network components after
  fault edge bans and disjoint time blocks), solve the shards through
  the solver-backend registry, and merge the grants back into a single
  :class:`~repro.core.scheduler.ScheduleResult`.  The
  :func:`repro.verify.oracles.sharded_vs_monolithic` oracle checks
  every merged schedule against the monolithic solve.

``docs/parallel.md`` has the full design narrative: decomposition
rules, merge semantics and the determinism guarantees.
"""

from .fleet import (
    TaskResult,
    TaskSpec,
    default_jobs,
    get_task,
    register_task,
    run_fleet,
    task_names,
)
from .partition import Shard, partition_structure
from .sharded import ShardedScheduler, ShardSolveSpec, fleet_shard_solve

__all__ = [
    "TaskSpec",
    "TaskResult",
    "register_task",
    "get_task",
    "task_names",
    "run_fleet",
    "default_jobs",
    "Shard",
    "partition_structure",
    "ShardedScheduler",
    "ShardSolveSpec",
    "fleet_shard_solve",
]
