"""Fleet mode: fan picklable task specs out to a pool of worker processes.

The fleet runner is the scenario-level half of the parallel layer (the
subproblem-level half is :mod:`repro.parallel.sharded`).  It executes a
list of :class:`TaskSpec` envelopes — *name of a registered task
function* plus picklable keyword arguments — across ``jobs`` worker
processes and returns one :class:`TaskResult` per spec, **always in
spec order**, so a fleet run's output is a pure function of its input
list no matter how the pool interleaves completions.

Design rules, all in service of determinism and crash containment:

* Tasks are registered by *name* (:func:`register_task`), never passed
  as closures, so a spec is picklable by construction and replays
  identically in a forked or spawned worker.  Built-in task names map
  to dotted ``module:function`` paths resolved lazily, which both
  avoids import cycles (``repro.verify.fuzz`` uses the fleet, and the
  fleet's built-ins live in ``repro.verify.fuzz``) and makes names
  resolvable inside spawn-mode workers that haven't imported anything
  yet.
* A task that *raises* is contained: the worker catches the exception
  and returns a failure envelope (``ok=False`` with the error type,
  message and traceback text); the run continues.
* A task that *kills its worker* (segfault, ``os._exit``, OOM kill)
  breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`.
  The runner rebuilds the pool and retries every unfinished spec once
  (``retries=1``); specs still unfinished after their retry budget are
  reported as ``error_type="WorkerCrashed"`` envelopes.  Note the
  standard-library pool cannot attribute a crash to one spec, so a
  crash charges a retry to every spec that was in flight — with the
  default single retry, innocents complete on the rebuilt pool.
* A task that *hangs its worker* (deadlock, unbounded loop, stuck I/O)
  is caught by ``task_timeout=``: when a full timeout window passes
  without any spec completing, the runner declares the in-flight specs
  hung, kills the pool outright and rebuilds it, charging the same
  retry budget.  Specs whose budget is exhausted while hung are
  reported as ``error_type="WorkerHung"`` envelopes.  Without a
  timeout (the default) a hung worker blocks the run forever — the
  pre-chaos behaviour.
* ``jobs=1`` runs every spec inline in the calling process — no pool,
  no pickling — which is both the fast path for small runs and the
  reference behaviour the determinism tests compare multi-worker runs
  against.
"""

from __future__ import annotations

import importlib
import os
import traceback
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import multiprocessing as mp

from ..errors import ValidationError

__all__ = [
    "TaskSpec",
    "TaskResult",
    "register_task",
    "get_task",
    "task_names",
    "run_fleet",
    "default_jobs",
]

#: Name -> callable registry of fleet task functions.
_TASKS: dict[str, Callable] = {}

#: Built-in task names resolved lazily to ``module:function`` paths.
#: Lazy so importing the fleet never imports the heavy verify/experiment
#: stacks, and so spawn-mode workers can resolve names cold.
_BUILTIN_TASKS: dict[str, str] = {
    "fuzz_scenario": "repro.verify.fuzz:fleet_fuzz_scenario",
    "experiment": "repro.experiments.figures:fleet_experiment",
    "shard_solve": "repro.parallel.sharded:fleet_shard_solve",
    "chaos_probe": "repro.chaos.inject:chaos_fleet_probe",
}


def register_task(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a module-level function as a fleet task.

    The function must be importable by qualified name (no lambdas, no
    closures) so worker processes can resolve it; registration itself
    is just a name lookup table on top of that.
    """

    def decorator(fn: Callable) -> Callable:
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValidationError(f"fleet task {name!r} is already registered")
        _TASKS[name] = fn
        return fn

    return decorator


def get_task(name: str) -> Callable:
    """Resolve a task name to its function, importing built-ins lazily."""
    fn = _TASKS.get(name)
    if fn is not None:
        return fn
    path = _BUILTIN_TASKS.get(name)
    if path is None and ":" in name:
        path = name  # explicit "module:function" spec
    if path is not None:
        module_name, _, attr = path.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
        _TASKS.setdefault(name, fn)
        return fn
    raise ValidationError(
        f"unknown fleet task {name!r}; registered: {sorted(task_names())}"
    )


def task_names() -> frozenset[str]:
    """Every resolvable task name (registered plus built-in)."""
    return frozenset(_TASKS) | frozenset(_BUILTIN_TASKS)


def default_jobs() -> int:
    """Worker count matching the cores this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of fleet work: a registered task name plus its kwargs.

    Attributes
    ----------
    task:
        Name resolvable by :func:`get_task` (registered, built-in, or
        an explicit ``"module:function"`` path).
    kwargs:
        Keyword arguments for the task function.  Must be picklable;
        anything produced by :func:`repro.verify.fuzz.make_scenario`
        qualifies, as do ints/strings/numpy arrays.
    label:
        Optional human-readable tag echoed into the result envelope.
    """

    task: str
    kwargs: dict = field(default_factory=dict)
    label: str | None = None


@dataclass(frozen=True)
class TaskResult:
    """The envelope a fleet run returns for one spec.

    ``value`` holds the task function's return value when ``ok``;
    otherwise ``error`` / ``error_type`` / ``traceback`` describe the
    contained failure (``error_type="WorkerCrashed"`` when the worker
    process died rather than raised).  ``attempts`` counts executions
    including retries after pool crashes; ``worker_pid`` records where
    the task ran.  Neither field is part of the deterministic payload —
    report builders must key on ``value`` only.
    """

    index: int
    task: str
    label: str | None
    ok: bool
    value: object = None
    error: str | None = None
    error_type: str | None = None
    traceback: str | None = None
    attempts: int = 1
    worker_pid: int | None = None


def _execute(spec: TaskSpec, index: int) -> TaskResult:
    """Run one spec (in a worker or inline) into a result envelope."""
    try:
        fn = get_task(spec.task)
        value = fn(**spec.kwargs)
    except Exception as exc:  # noqa: BLE001 - contained by design
        return TaskResult(
            index=index,
            task=spec.task,
            label=spec.label,
            ok=False,
            error=str(exc),
            error_type=type(exc).__name__,
            traceback=traceback.format_exc(),
            worker_pid=os.getpid(),
        )
    return TaskResult(
        index=index,
        task=spec.task,
        label=spec.label,
        ok=True,
        value=value,
        worker_pid=os.getpid(),
    )


def _mp_context(start_method: str | None):
    """The multiprocessing context for the pool (fork where available)."""
    if start_method is None:
        start_method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
    if start_method not in mp.get_all_start_methods():
        raise ValidationError(
            f"unknown start method {start_method!r}; "
            f"available: {mp.get_all_start_methods()}"
        )
    return mp.get_context(start_method)


def _crashed_result(spec: TaskSpec, index: int, attempts: int) -> TaskResult:
    return TaskResult(
        index=index,
        task=spec.task,
        label=spec.label,
        ok=False,
        error=(
            f"worker process died while running task {spec.task!r} "
            f"(attempt {attempts})"
        ),
        error_type="WorkerCrashed",
        attempts=attempts,
    )


def _hung_result(
    spec: TaskSpec, index: int, attempts: int, timeout: float
) -> TaskResult:
    return TaskResult(
        index=index,
        task=spec.task,
        label=spec.label,
        ok=False,
        error=(
            f"worker made no progress within {timeout:g}s while running "
            f"task {spec.task!r} (attempt {attempts}); pool was killed "
            "and rebuilt"
        ),
        error_type="WorkerHung",
        attempts=attempts,
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool's workers so its shutdown cannot block.

    ``ProcessPoolExecutor`` has no supported way to abandon a running
    task: exiting the ``with`` block joins workers, which waits forever
    on a hung one.  Killing the worker processes breaks the pool (the
    executor notices the dead children and unblocks), after which the
    normal rebuild-and-retry path takes over.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except OSError:  # pragma: no cover - already reaped
            pass


def run_fleet(
    specs: Iterable[TaskSpec],
    jobs: int = 1,
    *,
    retries: int = 1,
    start_method: str | None = None,
    task_timeout: float | None = None,
) -> list[TaskResult]:
    """Execute ``specs`` across ``jobs`` workers; results in spec order.

    Parameters
    ----------
    specs:
        Task envelopes; every ``task`` name must resolve and every
        ``kwargs`` must pickle (checked lazily — a spec that fails to
        pickle becomes a failure envelope, not a crashed run).
    jobs:
        Worker processes.  ``1`` (the default) runs inline with no
        pool; the output is identical either way.
    retries:
        How many times an unfinished spec is re-submitted after its
        worker pool breaks — by a crash *or* a hang kill — before being
        reported as ``WorkerCrashed`` / ``WorkerHung``.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` override; ``None``
        prefers fork when the platform offers it.
    task_timeout:
        Hang deadline in seconds.  When a full window of this length
        passes with no spec completing, the in-flight specs are
        declared hung, the pool is killed and rebuilt, and the hang
        charges the same ``retries`` budget a crash does (the pool
        cannot attribute the stall to one spec, so every in-flight spec
        is charged).  ``None`` (the default) waits forever.  Ignored on
        the inline ``jobs=1`` path, which has no worker to kill.
    """
    spec_list: Sequence[TaskSpec] = list(specs)
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    if task_timeout is not None and not task_timeout > 0:
        raise ValidationError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    for spec in spec_list:
        if not isinstance(spec, TaskSpec):
            raise ValidationError(
                f"specs must be TaskSpec instances, got {type(spec).__name__}"
            )
        get_task(spec.task)  # fail fast on unknown names
    if not spec_list:
        return []

    if jobs == 1:
        return [_execute(spec, i) for i, spec in enumerate(spec_list)]

    ctx = _mp_context(start_method)
    results: list[TaskResult | None] = [None] * len(spec_list)
    attempts = [0] * len(spec_list)
    hung: set[int] = set()
    pending = list(range(len(spec_list)))
    while pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            index_of = {}
            for i in pending:
                attempts[i] += 1
                try:
                    index_of[pool.submit(_execute, spec_list[i], i)] = i
                except BrokenProcessPool:
                    pass  # pool already broken; retried or reported below
            not_done = set(index_of)
            while not_done:
                done, not_done = wait(not_done, timeout=task_timeout)
                for future in done:
                    i = index_of[future]
                    try:
                        results[i] = replace(
                            future.result(), attempts=attempts[i]
                        )
                        hung.discard(i)
                    except BrokenProcessPool:
                        pass  # worker died; retried or reported below
                    except Exception as exc:  # unpicklable spec/result etc.
                        results[i] = TaskResult(
                            index=i,
                            task=spec_list[i].task,
                            label=spec_list[i].label,
                            ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__,
                            traceback=traceback.format_exc(),
                            attempts=attempts[i],
                        )
                if not done and not_done:
                    # A full timeout window with zero completions: the
                    # in-flight specs are hung.  Queued futures that
                    # cancel cleanly never ran; the rest were on a
                    # worker and are marked hung for attribution.
                    for future in not_done:
                        if not future.cancel():
                            hung.add(index_of[future])
                    _kill_pool(pool)
                    break
        still_pending = [i for i in pending if results[i] is None]
        for i in list(still_pending):
            if attempts[i] > retries:
                results[i] = (
                    _hung_result(spec_list[i], i, attempts[i], task_timeout)
                    if i in hung
                    else _crashed_result(spec_list[i], i, attempts[i])
                )
                still_pending.remove(i)
        pending = still_pending
    return [r for r in results if r is not None]
