"""From schedule to switches: lambda assignment on the NSFNET backbone.

Run:  python examples/nsfnet_deployment.py

The paper's algorithms produce wavelength *counts*; a deployment must
also pick concrete lambda indices per link — trivially under full
wavelength conversion (the paper's implicit model), less so under the
strict continuity constraint of converter-free networks.  This example
schedules a mixed e-science workload on the 14-node NSFNET backbone,
prints the controller's full pass report, and realizes the schedule
both ways, counting how many grants would need a converter.
"""

from repro import Scheduler, realize_schedule
from repro.analysis import describe_schedule
from repro.network import topologies
from repro.workload import mixed_escience_trace


def main() -> None:
    network = topologies.nsfnet().with_wavelengths(4, total_link_rate=20.0)
    jobs = mixed_escience_trace(
        network,
        num_bulk=4,
        num_small=12,
        bulk_size=250.0,
        horizon_slices=10,
        seed=99,
    )
    print(
        f"scheduling {len(jobs)} transfers ({jobs.total_size():.0f} GB) "
        f"on NSFNET ({network.num_nodes} nodes, "
        f"{network.num_link_pairs} link pairs)\n"
    )

    result = Scheduler(network, k_paths=4).schedule(jobs)
    print(describe_schedule(result, max_jobs=16, max_links=10))

    # --- Realize the integer schedule as concrete lambdas ---------------
    converters = realize_schedule(result.structure, result.x, "converters")
    strict = realize_schedule(result.structure, result.x, "strict")
    total = len(strict.grants) + len(strict.failures)

    print("\nlambda realization:")
    print(
        f"  with converters (paper's model): {len(converters.grants)}/{total} "
        f"grants realized; {converters.continuity_rate():.0%} happened to be "
        "lambda-continuous anyway"
    )
    print(
        f"  strict continuity (no converters): {len(strict.grants)}/{total} "
        f"grants realized first-fit; {len(strict.failures)} would need a "
        "converter or a re-route"
    )
    if strict.failures:
        print("  unrealizable grants under strict continuity:")
        for job_id, path, slice_index, count in strict.failures[:5]:
            print(
                f"    job {job_id}: {count} lambda(s) on "
                f"{' > '.join(str(n) for n in path)} @ slice {slice_index}"
            )

    sample = converters.grants[0]
    hops = " | ".join(
        f"{u}->{v}: {list(lams)}"
        for (u, v), lams in zip(
            zip(sample.path[:-1], sample.path[1:]), sample.lambdas_per_edge
        )
    )
    print(f"\nexample grant (job {sample.job_id}, slice {sample.slice_index}):")
    print(f"  {hops}")


if __name__ == "__main__":
    main()
