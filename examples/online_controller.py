"""The periodic network controller: online arrivals, three overload policies.

Run:  python examples/online_controller.py

Jobs arrive over time following a Poisson process; every ``tau`` hours
the controller collects new requests, makes an admission decision and
re-schedules all unfinished transfers (the paper's Section II-A
framework).  The same arrival trace is replayed under the three overload
actions the paper discusses:

* reject  — footnote 1: admit the longest feasible prefix, refuse the rest;
* reduce  — action (ii): admit everyone, serve stage-2 shares;
* extend  — action (iii): admit everyone, stretch deadlines via RET.
"""

from repro import Simulation, summarize
from repro.analysis import Table
from repro.network import topologies
from repro.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    network = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)

    generator = WorkloadGenerator(
        network,
        WorkloadConfig(size_low=20.0, size_high=160.0, window_slices_high=6),
        seed=33,
    )
    jobs = generator.arrival_stream(rate=1.5, horizon=12.0)
    print(
        f"replaying {len(jobs)} requests arriving over 12 hours "
        f"({jobs.total_size():.0f} GB offered)\n"
    )

    table = Table(
        [
            "policy",
            "completed",
            "rejected",
            "expired",
            "deadline %",
            "delivered GB",
            "mean response h",
            "passes",
            "mean solve s",
        ],
        title="Same trace under the three overload policies:",
    )
    for policy in ("reject", "reduce", "extend"):
        sim = Simulation(
            network,
            tau=2.0,
            slice_length=1.0,
            policy=policy,
            k_paths=4,
            ret_b_max=8.0,
        )
        summary = summarize(sim.run(jobs, horizon=60.0))
        table.add_row(
            [
                policy,
                summary.num_completed,
                summary.num_rejected,
                summary.num_expired,
                round(100 * summary.deadline_rate, 1),
                round(summary.delivered_volume, 0),
                round(summary.mean_response_time, 2),
                summary.num_scheduling_passes,
                round(summary.mean_solve_seconds, 3),
            ]
        )
    print(table.render())
    print(
        "\nreject keeps deadlines pristine for whoever gets in; reduce "
        "serves everyone partially; extend delivers every byte, late."
    )


if __name__ == "__main__":
    main()
