"""Scheduling around a fiber maintenance window, with congestion pricing.

Run:  python examples/maintenance_window.py

The paper's capacity constraint (3) is written per slice — ``C_e(j)`` —
so the framework natively handles links whose wavelength count varies
over time.  This example drains a core Abilene span for mid-day
maintenance, schedules a bulk-transfer batch around the outage, shows
the resulting link timeline as an ASCII Gantt chart, and uses the
stage-2 dual values to price where an extra wavelength would have
helped most.
"""

import numpy as np

from repro import (
    CapacityProfile,
    ProblemStructure,
    TimeGrid,
    lpdar,
    solve_stage1,
    solve_stage2_lp,
)
from repro.analysis import congestion_report, job_gantt, link_gantt
from repro.network import topologies
from repro.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    network = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)
    grid = TimeGrid.uniform(num_slices=8, slice_length=1.0)

    # The Chicago <-> Indianapolis span is drained from t=2 to t=6.
    profile = CapacityProfile.with_maintenance(
        network,
        grid,
        windows=[("Chicago", "Indianapolis", 2.0, 6.0, 0)],
    )
    print(f"capacity profile: {profile!r}")

    generator = WorkloadGenerator(
        network,
        WorkloadConfig(size_low=20.0, size_high=120.0,
                       window_slices_low=3, window_slices_high=6,
                       start_slack_slices=2),
        seed=71,
    )
    jobs = generator.jobs(14)

    structure = ProblemStructure(
        network, jobs, grid, k_paths=4, capacity_profile=profile
    )
    zstar = solve_stage1(structure).zstar
    stage2 = solve_stage2_lp(structure, zstar, alpha=0.1)
    rounded = lpdar(structure, stage2.x)
    print(f"\nZ* with the outage: {zstar:.3f}")
    print(
        "LPDAR weighted throughput: "
        f"{structure.weighted_throughput(rounded.x_lpdar):.3f} "
        f"(LP bound {structure.weighted_throughput(rounded.x_lp):.3f})"
    )

    # Compare against the healthy network.
    healthy = ProblemStructure(network, jobs, grid, k_paths=4)
    z_healthy = solve_stage1(healthy).zstar
    print(f"Z* without the outage: {z_healthy:.3f} "
          f"(outage cost: {100 * (1 - zstar / z_healthy):.1f}% of throughput)")

    print("\nPer-job wavelength timeline (columns = slices):")
    print(job_gantt(structure, rounded.x_lpdar))

    print("\nBusiest links ('*' = saturated; note the drained span goes dark):")
    print(link_gantt(structure, rounded.x_lpdar, max_links=12))

    report = congestion_report(structure, zstar, alpha=0.1)
    print("\nWhere would one more wavelength help most (shadow prices)?")
    for source, target, price in report.bottlenecks(top=5):
        print(f"  {source} -> {target}: marginal throughput {price:.4f}")
    print(
        f"\n{report.congested_fraction():.0%} of constrained (link, slice) "
        "cells carry a positive congestion price"
    )


if __name__ == "__main__":
    main()
