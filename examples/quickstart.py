"""Quickstart: schedule two bulk transfers on the Abilene backbone.

Run:  python examples/quickstart.py

Builds the 11-node Abilene network with each 20 Gbps link split into 4
wavelengths, submits two deadline-constrained transfers, runs the paper's
maximizing-throughput algorithm (stage 1 + stage 2 + LPDAR) and prints
the resulting wavelength grants.
"""

from repro import Job, JobSet, Scheduler
from repro.analysis import Table
from repro.network import topologies


def main() -> None:
    # 20 Gbps links carried on 4 wavelengths of 5 Gbps each.  Volumes are
    # in gigabytes and time in hours, so one wavelength moves
    # 5 GB/h * 1 h = 5 GB per slice. (Toy numbers for readability.)
    network = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)

    jobs = JobSet(
        [
            Job(
                id="hep-run-42",
                source="Chicago",
                dest="Sunnyvale",
                size=60.0,
                start=0.0,
                end=4.0,
            ),
            Job(
                id="climate-q2",
                source="Seattle",
                dest="Atlanta",
                size=35.0,
                start=1.0,
                end=5.0,
            ),
        ]
    )

    scheduler = Scheduler(network, k_paths=4, alpha=0.1)
    result = scheduler.schedule(jobs)

    print(f"maximum concurrent throughput Z* = {result.zstar:.3f}")
    print(f"network overloaded? {result.overloaded}")
    print(f"weighted throughput (LPDAR) = {result.weighted_throughput('lpdar'):.3f}")
    print(f"LPDAR / LP throughput ratio = {result.normalized_throughput('lpdar'):.3f}")
    print(f"fairness floor met? {result.meets_fairness('lpdar')}")

    table = Table(
        ["job", "path", "slice", "interval", "wavelengths"],
        title="\nWavelength grants (the controller's switch configuration):",
    )
    for grant in result.grants():
        table.add_row(
            [
                grant.job_id,
                " > ".join(str(n) for n in grant.path),
                grant.slice_index,
                f"[{grant.interval[0]:g}, {grant.interval[1]:g})",
                grant.wavelengths,
            ]
        )
    print(table.render())

    per_job = Table(["job", "requested GB", "throughput Z_i", "finished"],
                    title="\nPer-job outcome:")
    z = result.job_throughputs("lpdar")
    for i, job in enumerate(jobs):
        per_job.add_row([job.id, job.size, round(float(z[i]), 3), bool(z[i] >= 1 - 1e-9)])
    print(per_job.render())


if __name__ == "__main__":
    main()
