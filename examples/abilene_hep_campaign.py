"""Overloaded HEP replication campaign on Abilene: size re-negotiation.

Run:  python examples/abilene_hep_campaign.py

A Tier-1 archive must replicate fresh detector data to four Tier-2 sites
before the next data-taking run.  The offered load exceeds what the
network can carry by the deadlines (stage-1 ``Z* < 1``), so the
controller applies the paper's action (ii): every job keeps its deadline
but is guaranteed only the stage-2 share ``Z_i`` of its bytes (Remark 2),
and the user re-submits the reduced request.  The script shows the full
negotiation round-trip and verifies the renegotiated workload fits.
"""

import numpy as np

from repro import ProblemStructure, Scheduler, TimeGrid, solve_stage1
from repro.analysis import Table
from repro.network import topologies
from repro.workload import hep_tier_trace


def main() -> None:
    network = topologies.abilene().with_wavelengths(4, total_link_rate=20.0)

    # Each of 4 Tier-2 sites needs 3 replicas of ~500 GB within 6 hours.
    jobs = hep_tier_trace(
        network,
        num_tier2=4,
        transfers_per_site=3,
        dataset_size=500.0,
        window_slices=6,
        seed=7,
    )
    print(f"offered load: {jobs.total_size():.0f} GB across {len(jobs)} transfers\n")

    scheduler = Scheduler(network, k_paths=4, alpha=0.1)
    result = scheduler.schedule(jobs)

    print(f"stage-1 maximum concurrent throughput Z* = {result.zstar:.3f}")
    if not result.overloaded:
        print("network is underloaded; every request is admitted in full")
        return
    print("network is OVERLOADED: guaranteeing deadlines requires size cuts\n")

    z = result.job_throughputs("lpdar")
    guaranteed = result.guaranteed_sizes("lpdar")
    table = Table(
        ["job", "dest", "requested GB", "Z_i", "guaranteed GB", "cut %"],
        title="Re-negotiation proposal (paper Remark 2):",
    )
    for i, job in enumerate(jobs):
        cut = 100.0 * (1.0 - guaranteed[i] / job.size)
        table.add_row(
            [
                job.id,
                job.dest,
                round(job.size, 1),
                round(float(z[i]), 3),
                round(float(guaranteed[i]), 1),
                round(max(cut, 0.0), 1),
            ]
        )
    print(table.render())

    fairness_floor = (1 - result.alpha) * result.zstar
    print(
        f"\nfairness: every job keeps Z_i >= (1 - alpha) Z* = "
        f"{fairness_floor:.3f} (alpha = {result.alpha})"
    )
    print(f"LPDAR achieved {result.normalized_throughput('lpdar'):.1%} of the LP bound")

    # The users accept: re-submit the reduced sizes and verify they fit.
    renegotiated = type(jobs)(
        job.scaled(max(float(g), 1e-9) / job.size)
        for job, g in zip(jobs, guaranteed)
        if g > 1.0  # drop jobs cut to (near) zero
    )
    structure = ProblemStructure(
        network,
        renegotiated,
        TimeGrid.covering(renegotiated.max_end()),
        k_paths=4,
    )
    z_check = solve_stage1(structure).zstar
    print(
        f"\nre-submitted {len(renegotiated)} reduced jobs: stage-1 Z* = "
        f"{z_check:.3f} -> {'ADMITTED' if z_check >= 1.0 - 1e-6 else 'still infeasible'}"
    )


if __name__ == "__main__":
    main()
