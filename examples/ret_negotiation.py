"""Relaxing End Times: complete every transfer with a bounded delay.

Run:  python examples/ret_negotiation.py

Some users would rather receive their *entire* dataset a predictable bit
late than receive a truncated one on time.  This example overloads a
Waxman research network, runs Algorithm 2 (RET) to find the smallest
common end-time extension ``(1 + b)`` under which every job completes,
and contrasts the outcome with the strict-deadline scheduler:

* strict deadlines (Section II-B): sizes shrink, deadlines hold;
* relaxed end times (Section II-C): sizes hold, deadlines stretch.
"""

from repro import Scheduler, solve_ret
from repro.analysis import Table
from repro.core.metrics import completion_slices
from repro.network import waxman_network
from repro.workload import WorkloadConfig, WorkloadGenerator


def main() -> None:
    network = waxman_network(
        60, avg_degree=4, capacity=2, wavelength_rate=10.0, seed=20
    )
    generator = WorkloadGenerator(
        network,
        WorkloadConfig(size_low=40.0, size_high=120.0, window_slices_high=5),
        seed=21,
    )
    jobs = generator.jobs(25)

    # --- Option A: strict deadlines, reduced sizes -----------------------
    strict = Scheduler(network, k_paths=4).schedule(jobs)
    print(f"stage-1 Z* = {strict.zstar:.3f} "
          f"({'overloaded' if strict.overloaded else 'underloaded'})")
    print(
        f"strict deadlines: {strict.fraction_finished('lpdar'):.0%} of jobs "
        "receive their full size by the requested end times"
    )

    # --- Option B: full sizes, relaxed end times (Algorithm 2) -----------
    ret = solve_ret(network, jobs, k_paths=4, b_max=20.0, delta=0.1)
    print(
        f"\nRET: smallest LP-feasible extension b_hat = {ret.b_hat:.3f}; "
        f"after LPDAR rounding b_final = {ret.b_final:.3f} "
        f"({ret.delta_steps} delta steps)"
    )
    print(
        f"relaxed end times: {ret.fraction_finished('lpdar'):.0%} of jobs "
        "complete in full"
    )
    print(
        f"average end time: LP {ret.average_end_time('lp'):.2f} slices, "
        f"LPDAR {ret.average_end_time('lpdar'):.2f} slices"
    )

    # Per-job proposal the controller would send back to the users.
    slices = completion_slices(ret.structure, ret.assignments.x_lpdar)
    table = Table(
        ["job", "size", "requested end", "proposed end", "actual finish"],
        title="\nEnd-time extension proposal (first 10 jobs):",
    )
    for i, job in enumerate(jobs):
        if i >= 10:
            break
        extended = ret.structure.jobs[i]
        finish = ret.structure.grid.slice_end(int(slices[i]))
        table.add_row(
            [
                job.id,
                round(job.size, 1),
                job.end,
                round(extended.end, 2),
                finish,
            ]
        )
    print(table.render())
    print(
        "\n(actual finishes are often earlier than the proposed ends: the "
        "Quick-Finish objective packs flow into the earliest slices)"
    )


if __name__ == "__main__":
    main()
