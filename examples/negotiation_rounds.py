"""Multi-round controller-user negotiation over an overloaded network.

Run:  python examples/negotiation_rounds.py

Paper Section II: in overload the controller does not simply reject —
"the users may modify the job parameters and re-submit the modified
requests ... This negotiation process can be further repeated."  This
example scripts a realistic two-round negotiation:

* round 1 proposes reduced sizes (Remark 2); two demanding users
  decline, one counters, one withdraws;
* round 2 offers the holdouts extended deadlines (Algorithm 2);
* the session converges to an admissible request set.
"""

from repro import Job, JobSet, NegotiationSession
from repro.analysis import Table
from repro.network import topologies
from repro.workload import WorkloadConfig, WorkloadGenerator


def show_round(session, round_, note):
    table = Table(
        ["job", "original size", "original end", "proposed size", "proposed end"],
        title=f"round {round_.index + 1} ({round_.kind}): {note}",
    )
    for job in session.current_jobs:
        p = round_.proposals[job.id]
        table.add_row(
            [job.id, round(job.size, 1), job.end, round(p.size, 1),
             round(p.end, 2)]
        )
    print(table.render())
    print()


def main() -> None:
    network = topologies.abilene().with_wavelengths(2, total_link_rate=20.0)
    generator = WorkloadGenerator(
        network,
        WorkloadConfig(size_low=150.0, size_high=400.0,
                       window_slices_low=2, window_slices_high=4),
        seed=81,
    )
    jobs = generator.jobs(8)

    session = NegotiationSession(network, jobs, k_paths=4)
    print(
        f"submitted: {len(jobs)} requests, {jobs.total_size():.0f} GB; "
        f"Z* = {session.zstar():.3f} "
        f"({'admissible' if session.admissible() else 'OVERLOADED'})\n"
    )
    if session.admissible():
        print("nothing to negotiate — try a heavier seed")
        return

    # ---- Round 1: size reductions --------------------------------------
    round1 = session.propose_size_reduction()
    show_round(session, round1, "guaranteed sizes per Remark 2")

    ids = [j.id for j in session.current_jobs]
    session.respond(ids[0], accept=False)            # insists on full size
    session.respond(ids[1], accept=False,
                    counter_size=round1.proposals[ids[1]].size * 1.5)
    session.respond(ids[2], withdraw=True)           # walks away
    session.apply_responses()                        # the rest accept
    print(
        f"after round 1: {len(session.current_jobs)} requests remain "
        f"({len(session.withdrawn)} withdrew); Z* = {session.zstar():.3f}\n"
    )

    if not session.admissible():
        # ---- Round 2: deadline extensions for the holdouts --------------
        round2 = session.propose_deadline_extension(b_max=10.0)
        show_round(session, round2, "RET-extended end times for everyone")
        session.apply_responses()
        print(
            f"after round 2: Z* = {session.zstar():.3f} "
            f"({'admissible' if session.admissible() else 'still short'})\n"
        )

    table = Table(
        ["job", "final size", "final end"],
        title="agreed request set",
    )
    for job in session.current_jobs:
        table.add_row([job.id, round(job.size, 1), round(job.end, 2)])
    print(table.render())
    print(
        f"\nnegotiation closed in {len(session.rounds)} round(s); "
        f"{len(session.withdrawn)} request(s) withdrawn"
    )


if __name__ == "__main__":
    main()
