"""Capacity planning from the scheduler's own shadow prices.

Run:  python examples/upgrade_advisor.py

The same LP the controller solves to schedule tonight's transfers
prices every link: the dual of capacity constraint (3) says how much
weighted throughput one extra wavelength would buy.  This example takes
a congested random research network, asks the planner for the best way
to spend a 5-wavelength upgrade budget, and contrasts it with spending
the same budget on random links.
"""

import numpy as np

from repro import Network, ProblemStructure, TimeGrid, solve_stage1, solve_stage2_lp
from repro.analysis import Table, plan_upgrades
from repro.network import waxman_network
from repro.workload import WorkloadConfig, WorkloadGenerator

BUDGET = 5


def throughput_of(network, jobs, grid) -> float:
    structure = ProblemStructure(network, jobs, grid, 4)
    zstar = solve_stage1(structure).zstar
    return solve_stage2_lp(structure, zstar, alpha=0.1).objective


def main() -> None:
    network = waxman_network(
        40, capacity=2, wavelength_rate=10.0, seed=55
    )
    jobs = WorkloadGenerator(
        network,
        WorkloadConfig(size_low=30.0, size_high=120.0,
                       window_slices_low=2, window_slices_high=4),
        seed=56,
    ).jobs(50)
    grid = TimeGrid.covering(jobs.max_end())

    print(
        f"planning a {BUDGET}-wavelength upgrade for a "
        f"{network.num_nodes}-node research network under "
        f"{jobs.total_size():.0f} GB of demand\n"
    )

    plan = plan_upgrades(network, jobs, grid=grid, budget=BUDGET)

    table = Table(
        ["step", "light this fiber", "price when chosen", "throughput after"],
        title=f"upgrade plan (baseline throughput {plan.throughput_before:.4f})",
    )
    for k, step in enumerate(plan.steps):
        table.add_row(
            [
                k + 1,
                f"{step.source} <-> {step.target}",
                round(step.price, 4),
                round(step.throughput_after, 4),
            ]
        )
    print(table.render())
    print(
        f"\nplanned gain: {plan.throughput_gain():+.1%} weighted throughput "
        f"({plan.throughput_before:.4f} -> {plan.throughput_after:.4f})"
    )

    # Contrast: the same budget on uniformly random link pairs.
    rng = np.random.default_rng(57)
    pairs = [
        (e.source, e.target)
        for e in network.edges
        if network.node_index(e.source) < network.node_index(e.target)
    ]
    gains = []
    for _ in range(5):
        chosen = rng.choice(len(pairs), size=BUDGET, replace=True)
        upgraded = Network(wavelength_rate=network.wavelength_rate)
        for node in network.nodes:
            upgraded.add_node(node)
        bumps = {}
        for idx in chosen:
            u, v = pairs[int(idx)]
            bumps[(u, v)] = bumps.get((u, v), 0) + 1
        for e in network.edges:
            bump = bumps.get((e.source, e.target), 0) + bumps.get(
                (e.target, e.source), 0
            )
            upgraded.add_edge(e.source, e.target, e.capacity + bump, e.weight)
        gains.append(
            throughput_of(upgraded, jobs, grid) / plan.throughput_before - 1.0
        )
    print(
        f"random-upgrade gain (mean of 5 draws): {np.mean(gains):+.1%} — "
        "the dual prices know where the bytes are stuck"
    )


if __name__ == "__main__":
    main()
